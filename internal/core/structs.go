package core

import (
	"sort"

	"repro/internal/dp"
	"repro/internal/heap"
	"repro/internal/ranking"
)

// candStruct orders the rows of one candidate group by their suffix
// weight π. Position 0 always holds the best candidate. successors(idx)
// returns the structure positions that directly follow idx in the
// variant's exploration order; together the successor edges span every
// position exactly once from position 0 (a chain for sorted variants, a
// binary tree for Take2, a star for All).
type candStruct interface {
	// at returns the row and its π at structure position idx; ok is
	// false past the end.
	at(idx int32) (row int32, pi float64, ok bool)
	// successors appends idx's successor positions to buf.
	successors(idx int32, buf []int32) []int32
	// len reports the number of candidates.
	len() int
}

type rowPi struct {
	row int32
	pi  float64
}

// makeStructFn builds the variant's structure for one group of a node.
type makeStructFn func(n *dp.Node, g *dp.Group) candStruct

func structFactory(v Variant, agg ranking.Aggregate) makeStructFn {
	less := func(a, b rowPi) bool { return agg.Less(a.pi, b.pi) }
	pairs := func(n *dp.Node, g *dp.Group) []rowPi {
		ps := make([]rowPi, len(g.Rows))
		for i, r := range g.Rows {
			ps[i] = rowPi{row: r, pi: n.Pi[r]}
		}
		return ps
	}
	switch v {
	case Eager:
		return func(n *dp.Node, g *dp.Group) candStruct {
			ps := pairs(n, g)
			sort.Slice(ps, func(i, j int) bool { return less(ps[i], ps[j]) })
			return &sortedStruct{ps: ps}
		}
	case Lazy:
		return func(n *dp.Node, g *dp.Group) candStruct {
			return &lazyStruct{inc: heap.NewIncSort(less, pairs(n, g))}
		}
	case Quick:
		return func(n *dp.Node, g *dp.Group) candStruct {
			return &quickStruct{inc: heap.NewIncQuick(less, pairs(n, g))}
		}
	case Take2:
		return func(n *dp.Node, g *dp.Group) candStruct {
			h := heap.NewFromSlice(less, pairs(n, g))
			return &heapStruct{ps: h.Items()}
		}
	case All:
		return func(n *dp.Node, g *dp.Group) candStruct {
			ps := pairs(n, g)
			// Best to the front; the rest stay unsorted.
			if len(ps) > 0 {
				ps[0], ps[g.BestIdx] = ps[g.BestIdx], ps[0]
			}
			return &allStruct{ps: ps}
		}
	default:
		panic("core: not a PART variant: " + string(v))
	}
}

// sortedStruct: fully sorted candidate list (Eager).
type sortedStruct struct{ ps []rowPi }

func (s *sortedStruct) at(idx int32) (int32, float64, bool) {
	if int(idx) >= len(s.ps) {
		return 0, 0, false
	}
	p := s.ps[idx]
	return p.row, p.pi, true
}

func (s *sortedStruct) successors(idx int32, buf []int32) []int32 {
	if int(idx+1) < len(s.ps) {
		buf = append(buf, idx+1)
	}
	return buf
}

func (s *sortedStruct) len() int { return len(s.ps) }

// lazyStruct: incrementally heap-sorted candidate list (Lazy).
type lazyStruct struct{ inc *heap.IncSort[rowPi] }

func (s *lazyStruct) at(idx int32) (int32, float64, bool) {
	p, ok := s.inc.Get(int(idx))
	if !ok {
		return 0, 0, false
	}
	return p.row, p.pi, true
}

func (s *lazyStruct) successors(idx int32, buf []int32) []int32 {
	if int(idx+1) < s.inc.Total() {
		buf = append(buf, idx+1)
	}
	return buf
}

func (s *lazyStruct) len() int { return s.inc.Total() }

// quickStruct: incrementally quicksorted candidate list (Quick).
type quickStruct struct{ inc *heap.IncQuick[rowPi] }

func (s *quickStruct) at(idx int32) (int32, float64, bool) {
	p, ok := s.inc.Get(int(idx))
	if !ok {
		return 0, 0, false
	}
	return p.row, p.pi, true
}

func (s *quickStruct) successors(idx int32, buf []int32) []int32 {
	if int(idx+1) < s.inc.Total() {
		buf = append(buf, idx+1)
	}
	return buf
}

func (s *quickStruct) len() int { return s.inc.Total() }

// heapStruct: heap-ordered candidates; successors are heap children
// (Take2). The heap property guarantees successors never rank better
// than their parent, which is all the global queue needs.
type heapStruct struct{ ps []rowPi }

func (s *heapStruct) at(idx int32) (int32, float64, bool) {
	if int(idx) >= len(s.ps) {
		return 0, 0, false
	}
	p := s.ps[idx]
	return p.row, p.pi, true
}

func (s *heapStruct) successors(idx int32, buf []int32) []int32 {
	if l := 2*idx + 1; int(l) < len(s.ps) {
		buf = append(buf, l)
	}
	if r := 2*idx + 2; int(r) < len(s.ps) {
		buf = append(buf, r)
	}
	return buf
}

func (s *heapStruct) len() int { return len(s.ps) }

// allStruct: position 0 is the best; all other positions are successors
// of 0 and have no successors themselves (All).
type allStruct struct{ ps []rowPi }

func (s *allStruct) at(idx int32) (int32, float64, bool) {
	if int(idx) >= len(s.ps) {
		return 0, 0, false
	}
	p := s.ps[idx]
	return p.row, p.pi, true
}

func (s *allStruct) successors(idx int32, buf []int32) []int32 {
	if idx == 0 {
		for i := int32(1); int(i) < len(s.ps); i++ {
			buf = append(buf, i)
		}
	}
	return buf
}

func (s *allStruct) len() int { return len(s.ps) }
