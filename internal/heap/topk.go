package heap

// TopK collects the k smallest elements (by less) from a stream using a
// bounded max-heap of size k. Add is O(log k); Sorted returns the
// collected elements in ascending order.
type TopK[T any] struct {
	k    int
	less func(a, b T) bool
	// max-heap of the current k smallest: root is the largest kept element.
	heap *Heap[T]
}

// NewTopK returns a collector for the k smallest elements. k must be
// positive; a non-positive k collects nothing.
func NewTopK[T any](k int, less func(a, b T) bool) *TopK[T] {
	return &TopK[T]{
		k:    k,
		less: less,
		heap: New(func(a, b T) bool { return less(b, a) }), // invert: max-heap
	}
}

// Add offers x to the collector. It reports whether x was kept (i.e. x is
// currently among the k smallest seen).
func (t *TopK[T]) Add(x T) bool {
	if t.k <= 0 {
		return false
	}
	if t.heap.Len() < t.k {
		t.heap.Push(x)
		return true
	}
	worst, _ := t.heap.Peek()
	if !t.less(x, worst) {
		return false
	}
	t.heap.Pop()
	t.heap.Push(x)
	return true
}

// Threshold returns the current k-th smallest element (the largest kept).
// It reports false if fewer than k elements have been kept.
func (t *TopK[T]) Threshold() (T, bool) {
	if t.heap.Len() < t.k {
		var zero T
		return zero, false
	}
	return t.heap.Peek()
}

// Len reports how many elements are currently kept (≤ k).
func (t *TopK[T]) Len() int { return t.heap.Len() }

// Sorted drains the collector and returns the kept elements in ascending
// order. The collector is empty afterwards.
func (t *TopK[T]) Sorted() []T {
	out := make([]T, t.heap.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i], _ = t.heap.Pop()
	}
	return out
}
