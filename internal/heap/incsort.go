package heap

// IncSort incrementally sorts a slice: Get(i) returns the i-th smallest
// element, materialising the sorted prefix lazily. Construction is O(n)
// (heapify); each new rank costs O(log n). This is the data structure
// behind the "Lazy" ANYK-PART variant: a candidate list only pays sorting
// cost for the ranks actually visited.
type IncSort[T any] struct {
	heap   *Heap[T]
	sorted []T // sorted prefix popped so far
}

// NewIncSort takes ownership of items and prepares incremental sorting.
func NewIncSort[T any](less func(a, b T) bool, items []T) *IncSort[T] {
	return &IncSort[T]{heap: NewFromSlice(less, items)}
}

// Total reports the total number of elements (sorted and unsorted).
func (s *IncSort[T]) Total() int { return len(s.sorted) + s.heap.Len() }

// SortedLen reports how many ranks have been materialised so far.
func (s *IncSort[T]) SortedLen() int { return len(s.sorted) }

// Get returns the element of rank i (0-based). It reports false if
// i >= Total(). Ranks already materialised are returned in O(1).
func (s *IncSort[T]) Get(i int) (T, bool) {
	for len(s.sorted) <= i {
		x, ok := s.heap.Pop()
		if !ok {
			var zero T
			return zero, false
		}
		s.sorted = append(s.sorted, x)
	}
	return s.sorted[i], true
}

// IncQuick incrementally sorts a slice using lazy quicksort: the slice is
// partitioned on demand and only the partitions containing requested ranks
// are refined. Amortised O(log n) per rank in expectation, O(n) extra
// memory for the partition-boundary stack. This backs the "Quick"
// ANYK-PART variant.
type IncQuick[T any] struct {
	less func(a, b T) bool
	data []T
	// bounds[i] is true when data[i] is a "pivot in final position", i.e.
	// everything left of i is ≤ data[i] and everything right is ≥.
	// sortedUpTo is the length of the fully sorted prefix.
	bounds     []int // stack of right boundaries (exclusive) of unsorted runs, ascending from top
	sortedUpTo int
	rng        uint64
}

// NewIncQuick takes ownership of items and prepares incremental quicksort.
func NewIncQuick[T any](less func(a, b T) bool, items []T) *IncQuick[T] {
	return &IncQuick[T]{
		less:   less,
		data:   items,
		bounds: []int{len(items)},
		rng:    0x9e3779b97f4a7c15,
	}
}

// Total reports the total number of elements.
func (q *IncQuick[T]) Total() int { return len(q.data) }

// SortedLen reports the length of the materialised sorted prefix.
func (q *IncQuick[T]) SortedLen() int { return q.sortedUpTo }

func (q *IncQuick[T]) next() uint64 {
	// splitmix64 step for pivot selection.
	q.rng += 0x9e3779b97f4a7c15
	z := q.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Get returns the element of rank i (0-based), refining partitions as
// needed. It reports false if i >= Total().
func (q *IncQuick[T]) Get(i int) (T, bool) {
	if i >= len(q.data) {
		var zero T
		return zero, false
	}
	for q.sortedUpTo <= i {
		// The unsorted run starts at sortedUpTo and ends at the boundary
		// on top of the stack.
		hi := q.bounds[len(q.bounds)-1]
		lo := q.sortedUpTo
		n := hi - lo
		if n <= 8 {
			// Insertion-sort small runs and retire the boundary.
			for a := lo + 1; a < hi; a++ {
				for b := a; b > lo && q.less(q.data[b], q.data[b-1]); b-- {
					q.data[b], q.data[b-1] = q.data[b-1], q.data[b]
				}
			}
			q.sortedUpTo = hi
			q.bounds = q.bounds[:len(q.bounds)-1]
			continue
		}
		// Partition around a random pivot. The pivot lands in its final
		// position `store`; push boundaries so the left run [lo,store),
		// the pivot run [store,store+1), and the right run [store+1,hi)
		// are retired in order. Excluding the pivot from both sub-runs
		// guarantees progress even with many duplicate elements.
		p := lo + int(q.next()%uint64(n))
		q.data[p], q.data[hi-1] = q.data[hi-1], q.data[p]
		pivot := q.data[hi-1]
		store := lo
		for j := lo; j < hi-1; j++ {
			if q.less(q.data[j], pivot) {
				q.data[store], q.data[j] = q.data[j], q.data[store]
				store++
			}
		}
		q.data[store], q.data[hi-1] = q.data[hi-1], q.data[store]
		q.bounds = append(q.bounds, store+1, store)
	}
	return q.data[i], true
}
