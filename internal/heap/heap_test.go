package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestHeapEmpty(t *testing.T) {
	h := New(intLess)
	if h.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap reported ok")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap reported ok")
	}
}

func TestHeapPushPopOrdered(t *testing.T) {
	h := New(intLess)
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, x := range in {
		h.Push(x)
	}
	for want := 0; want < 10; want++ {
		got, ok := h.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v, want %d,true", got, ok, want)
		}
	}
}

func TestHeapPeekDoesNotRemove(t *testing.T) {
	h := New(intLess)
	h.Push(2)
	h.Push(1)
	for i := 0; i < 3; i++ {
		if v, ok := h.Peek(); !ok || v != 1 {
			t.Fatalf("Peek = %d,%v, want 1,true", v, ok)
		}
	}
	if h.Len() != 2 {
		t.Fatalf("Len after Peek = %d, want 2", h.Len())
	}
}

func TestNewFromSlice(t *testing.T) {
	items := []int{9, 4, 7, 1, 3}
	h := NewFromSlice(intLess, items)
	var got []int
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int{1, 3, 4, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain = %v, want %v", got, want)
		}
	}
}

func TestHeapClear(t *testing.T) {
	h := New(intLess)
	h.Push(1)
	h.Push(2)
	h.Clear()
	if h.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", h.Len())
	}
	h.Push(3)
	if v, _ := h.Pop(); v != 3 {
		t.Fatalf("Pop after Clear = %d, want 3", v)
	}
}

func TestHeapDuplicates(t *testing.T) {
	h := New(intLess)
	for i := 0; i < 50; i++ {
		h.Push(7)
	}
	for i := 0; i < 50; i++ {
		if v, ok := h.Pop(); !ok || v != 7 {
			t.Fatalf("Pop dup = %d,%v", v, ok)
		}
	}
}

// Property: draining a heap yields a sorted permutation of the input.
func TestHeapDrainSortedProperty(t *testing.T) {
	f := func(in []int16) bool {
		h := New(func(a, b int16) bool { return a < b })
		for _, x := range in {
			h.Push(x)
		}
		prev := int16(-1 << 15)
		count := 0
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			if v < prev {
				return false
			}
			prev = v
			count++
		}
		return count == len(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleaved push/pop never violates min order w.r.t. a model.
func TestHeapAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(intLess)
	var model []int
	for op := 0; op < 5000; op++ {
		if rng.Intn(3) != 0 || len(model) == 0 {
			x := rng.Intn(1000)
			h.Push(x)
			model = append(model, x)
			sort.Ints(model)
		} else {
			v, ok := h.Pop()
			if !ok {
				t.Fatal("Pop failed with non-empty model")
			}
			if v != model[0] {
				t.Fatalf("op %d: Pop = %d, model min = %d", op, v, model[0])
			}
			model = model[1:]
		}
	}
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3, intLess)
	for _, x := range []int{9, 1, 8, 2, 7, 3} {
		tk.Add(x)
	}
	got := tk.Sorted()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Sorted len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10, intLess)
	tk.Add(2)
	tk.Add(1)
	if _, ok := tk.Threshold(); ok {
		t.Error("Threshold reported ok with fewer than k elements")
	}
	got := tk.Sorted()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Sorted = %v, want [1 2]", got)
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2, intLess)
	tk.Add(5)
	tk.Add(3)
	if th, ok := tk.Threshold(); !ok || th != 5 {
		t.Fatalf("Threshold = %d,%v, want 5,true", th, ok)
	}
	if kept := tk.Add(4); !kept {
		t.Error("Add(4) should displace 5")
	}
	if th, _ := tk.Threshold(); th != 4 {
		t.Fatalf("Threshold = %d, want 4", th)
	}
	if kept := tk.Add(9); kept {
		t.Error("Add(9) should be rejected")
	}
}

func TestTopKNonPositiveK(t *testing.T) {
	tk := NewTopK(0, intLess)
	if tk.Add(1) {
		t.Error("Add with k=0 kept an element")
	}
	if len(tk.Sorted()) != 0 {
		t.Error("Sorted with k=0 non-empty")
	}
}

// Property: TopK(k) over any input equals the first k of the sorted input.
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(in []int16, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		tk := NewTopK(k, func(a, b int16) bool { return a < b })
		for _, x := range in {
			tk.Add(x)
		}
		got := tk.Sorted()
		ref := append([]int16(nil), in...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if k > len(ref) {
			k = len(ref)
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncSortBasic(t *testing.T) {
	s := NewIncSort(intLess, []int{4, 2, 9, 1, 7})
	for i, want := range []int{1, 2, 4, 7, 9} {
		got, ok := s.Get(i)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", i, got, ok, want)
		}
	}
	if _, ok := s.Get(5); ok {
		t.Error("Get past end reported ok")
	}
}

func TestIncSortRandomAccessIsStable(t *testing.T) {
	s := NewIncSort(intLess, []int{4, 2, 9, 1, 7})
	if v, _ := s.Get(3); v != 7 {
		t.Fatalf("Get(3) = %d, want 7", v)
	}
	// Earlier ranks must already be materialised and stable.
	if s.SortedLen() < 4 {
		t.Fatalf("SortedLen = %d, want >= 4", s.SortedLen())
	}
	if v, _ := s.Get(0); v != 1 {
		t.Fatalf("Get(0) = %d, want 1", v)
	}
}

func TestIncSortEmpty(t *testing.T) {
	s := NewIncSort(intLess, nil)
	if _, ok := s.Get(0); ok {
		t.Error("Get(0) on empty reported ok")
	}
	if s.Total() != 0 {
		t.Errorf("Total = %d, want 0", s.Total())
	}
}

// Property: IncSort visits the same sequence as sort.
func TestIncSortMatchesSortProperty(t *testing.T) {
	f := func(in []int16) bool {
		cp := append([]int16(nil), in...)
		s := NewIncSort(func(a, b int16) bool { return a < b }, cp)
		ref := append([]int16(nil), in...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range ref {
			got, ok := s.Get(i)
			if !ok || got != ref[i] {
				return false
			}
		}
		_, ok := s.Get(len(ref))
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncQuickBasic(t *testing.T) {
	q := NewIncQuick(intLess, []int{4, 2, 9, 1, 7, 0, 3})
	for i, want := range []int{0, 1, 2, 3, 4, 7, 9} {
		got, ok := q.Get(i)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", i, got, ok, want)
		}
	}
	if _, ok := q.Get(7); ok {
		t.Error("Get past end reported ok")
	}
}

func TestIncQuickAllEqual(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = 5
	}
	q := NewIncQuick(intLess, in)
	for i := 0; i < 100; i++ {
		got, ok := q.Get(i)
		if !ok || got != 5 {
			t.Fatalf("Get(%d) = %d,%v, want 5,true", i, got, ok)
		}
	}
}

func TestIncQuickLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := make([]int, 10000)
	for i := range in {
		in[i] = rng.Intn(500) // many duplicates
	}
	ref := append([]int(nil), in...)
	sort.Ints(ref)
	q := NewIncQuick(intLess, in)
	// Access a scattering of ranks out of order.
	for _, i := range []int{9999, 0, 5000, 1, 9998, 4999, 2500} {
		got, ok := q.Get(i)
		if !ok || got != ref[i] {
			t.Fatalf("Get(%d) = %d,%v, want %d", i, got, ok, ref[i])
		}
	}
	for i := range ref {
		got, _ := q.Get(i)
		if got != ref[i] {
			t.Fatalf("full drain: Get(%d) = %d, want %d", i, got, ref[i])
		}
	}
}

// Property: IncQuick matches sort for arbitrary inputs.
func TestIncQuickMatchesSortProperty(t *testing.T) {
	f := func(in []int16) bool {
		cp := append([]int16(nil), in...)
		q := NewIncQuick(func(a, b int16) bool { return a < b }, cp)
		ref := append([]int16(nil), in...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range ref {
			got, ok := q.Get(i)
			if !ok || got != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := New(intLess)
	for i := 0; i < b.N; i++ {
		h.Push(i * 2654435761 % 1000003)
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}

func BenchmarkIncSortFirst10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]int, 100000)
	for i := range base {
		base[i] = rng.Int()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]int(nil), base...)
		s := NewIncSort(intLess, cp)
		for j := 0; j < 10; j++ {
			s.Get(j)
		}
	}
}
