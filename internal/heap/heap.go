// Package heap provides generic priority-queue machinery used across the
// library: a comparator-based binary min-heap, a bounded top-k collector,
// and incremental ("lazy") sorters that expose a sorted prefix of a slice
// on demand. The standard library's container/heap requires an interface
// implementation per element type and offers no incremental-sort or
// bounded-k helpers, so the ranked-enumeration algorithms in this module
// build on the generic implementations here instead.
package heap

// Heap is a binary min-heap ordered by a user-supplied less function.
// The zero value is not usable; construct with New or NewFromSlice.
type Heap[T any] struct {
	less func(a, b T) bool
	data []T
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewFromSlice heapifies items in O(len(items)) and takes ownership of the
// slice.
func NewFromSlice[T any](less func(a, b T) bool, items []T) *Heap[T] {
	h := &Heap[T]{less: less, data: items}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// Len reports the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.data) }

// Push adds x to the heap in O(log n).
func (h *Heap[T]) Push(x T) {
	h.data = append(h.data, x)
	h.siftUp(len(h.data) - 1)
}

// Peek returns the minimum element without removing it. It reports false
// if the heap is empty.
func (h *Heap[T]) Peek() (T, bool) {
	if len(h.data) == 0 {
		var zero T
		return zero, false
	}
	return h.data[0], true
}

// Pop removes and returns the minimum element. It reports false if the
// heap is empty.
func (h *Heap[T]) Pop() (T, bool) {
	if len(h.data) == 0 {
		var zero T
		return zero, false
	}
	min := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	var zero T
	h.data[last] = zero // release reference for GC
	h.data = h.data[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return min, true
}

// Clear removes all elements but keeps the allocated capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.data {
		h.data[i] = zero
	}
	h.data = h.data[:0]
}

// Items returns the underlying slice in heap order (not sorted order).
// Mutating elements may violate the heap invariant.
func (h *Heap[T]) Items() []T { return h.data }

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.data[i], h.data[parent]) {
			return
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.data)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.data[right], h.data[left]) {
			smallest = right
		}
		if !h.less(h.data[smallest], h.data[i]) {
			return
		}
		h.data[i], h.data[smallest] = h.data[smallest], h.data[i]
		i = smallest
	}
}
