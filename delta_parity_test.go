package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// The delta/rebuild parity harness: seeded random queries
// (workload.RandomCQ spans acyclic trees, pure cycles, and chorded
// cycles, so all three plan kinds — join tree, canonical cycle, GHD —
// are exercised) receive random append/delete batches through
// Prepared.ApplyDelta, and after every batch the handle must be
// indistinguishable from a cold Compile on the updated data: top-k
// enumeration bit-identical (same tuples, same weights, same order —
// uniform random weights make the ranking tie-free, so any correct
// plan enumerates the one total order), Count equal, and fixed-seed
// Sample draws identical. Both the pre-warmed path (artefacts built
// before the deltas, patched incrementally and seeded into the new
// epoch) and the lazy path (artefacts first built after the deltas)
// are covered.

// dataMirror tracks what each relation's data should look like after
// the applied deltas — the reference the cold handle compiles from.
type dataMirror struct {
	tuples  []Tuple
	weights []float64
}

// apply mirrors ApplyDelta's per-atom semantics: deletes first (every
// row matching a deleted value tuple goes, duplicates included), then
// appends in order.
func (m *dataMirror) apply(d Delta) {
	if len(d.Delete) > 0 {
		kill := make(map[string]bool, len(d.Delete))
		for _, t := range d.Delete {
			kill[fmt.Sprint(t)] = true
		}
		var ts []Tuple
		var ws []float64
		for i, t := range m.tuples {
			if kill[fmt.Sprint(t)] {
				continue
			}
			ts = append(ts, t)
			ws = append(ws, m.weights[i])
		}
		m.tuples, m.weights = ts, ws
	}
	for i, t := range d.Append {
		m.tuples = append(m.tuples, append(Tuple(nil), t...))
		m.weights = append(m.weights, d.AppendWeights[i])
	}
}

// randomBatch builds one delta batch against the current mirrors:
// every relation independently may receive appends (fresh random rows
// in the data's domain with fresh random weights), deletes of existing
// rows, and occasionally a delete that matches nothing.
func randomBatch(rng *rand.Rand, inst *workload.Instance, mirrors []*dataMirror, domain int) []Delta {
	var batch []Delta
	for i, e := range inst.H.Edges {
		if rng.Intn(3) == 0 { // leave this relation alone
			continue
		}
		d := Delta{Rel: e.Name}
		for n := rng.Intn(4); n > 0; n-- {
			t := make(Tuple, len(e.Vars))
			for c := range t {
				t[c] = Value(rng.Intn(domain))
			}
			d.Append = append(d.Append, t)
			d.AppendWeights = append(d.AppendWeights, rng.Float64())
		}
		for n := rng.Intn(3); n > 0 && len(mirrors[i].tuples) > 0; n-- {
			d.Delete = append(d.Delete, mirrors[i].tuples[rng.Intn(len(mirrors[i].tuples))])
		}
		if rng.Intn(4) == 0 { // a miss: deleting an absent row is a no-op
			t := make(Tuple, len(e.Vars))
			for c := range t {
				t[c] = Value(domain + rng.Intn(5))
			}
			d.Delete = append(d.Delete, t)
		}
		if len(d.Append) > 0 || len(d.Delete) > 0 {
			batch = append(batch, d)
		}
	}
	return batch
}

// mirrorQuery builds the reference query from the mirrored data.
func mirrorQuery(inst *workload.Instance, mirrors []*dataMirror) *Query {
	q := NewQuery()
	for i, e := range inst.H.Edges {
		q.Rel(e.Name, e.Vars, mirrors[i].tuples, mirrors[i].weights)
	}
	return q
}

func assertBitIdentical(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: delta handle returned %d results, cold compile %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Weight != want[i].Weight {
			t.Fatalf("%s result %d: delta weight %v, cold %v", label, i, got[i].Weight, want[i].Weight)
		}
		if len(got[i].Tuple) != len(want[i].Tuple) {
			t.Fatalf("%s result %d: delta arity %d, cold %d", label, i, len(got[i].Tuple), len(want[i].Tuple))
		}
		for c := range want[i].Tuple {
			if got[i].Tuple[c] != want[i].Tuple[c] {
				t.Fatalf("%s result %d: delta tuple %v, cold %v", label, i, got[i].Tuple, want[i].Tuple)
			}
		}
	}
}

// deltaParityCase runs `rounds` random delta batches on one instance
// and cross-checks the handle against a cold compile after every one.
func deltaParityCase(t *testing.T, inst *workload.Instance, seed int64, rounds int, warm bool) {
	t.Helper()
	domain := 8
	mirrors := make([]*dataMirror, len(inst.Rels))
	for i, r := range inst.Rels {
		m := &dataMirror{}
		for j, tup := range r.Tuples {
			m.tuples = append(m.tuples, append(Tuple(nil), tup...))
			m.weights = append(m.weights, r.Weights[j])
		}
		mirrors[i] = m
	}
	// Both handles plan structurally (WithStatistics(nil)): cost-based
	// planning would re-search the GHD from each side's statistics, and
	// a different — equally correct — bag structure accumulates the
	// floating-point weights in a different order, breaking exact
	// bit-identity in the last ulp. The structural planner is a pure
	// function of the (delta-invariant) query shape, so it pins one plan
	// structure on both sides; cost-based delta correctness is covered by
	// the tolerance-based brute-force corpus in parity_test.go.
	p, err := Compile(mirrorQuery(inst, mirrors), WithStatistics(nil))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if warm {
		// Build every aggregate's artefacts up front so ApplyDelta takes
		// the incremental patch path and seeds them into the new epoch.
		for _, a := range parityAggregates {
			if _, err := p.TopK(1, WithRanking(a.agg)); err != nil {
				t.Fatalf("warm %s: %v", a.name, err)
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		batch := randomBatch(rng, inst, mirrors, domain)
		if err := p.ApplyDelta(batch); err != nil {
			t.Fatalf("round %d ApplyDelta: %v", round, err)
		}
		for i := range batch {
			mirrors[edgeIndex(inst, batch[i].Rel)].apply(batch[i])
		}
		cold, err := Compile(mirrorQuery(inst, mirrors), WithStatistics(nil))
		if err != nil {
			t.Fatalf("round %d cold compile: %v", round, err)
		}
		for _, a := range parityAggregates {
			label := fmt.Sprintf("round %d %s", round, a.name)
			got, err := p.TopK(0, WithRanking(a.agg))
			if err != nil {
				t.Fatalf("%s delta run: %v", label, err)
			}
			want, err := cold.TopK(0, WithRanking(a.agg))
			if err != nil {
				t.Fatalf("%s cold run: %v", label, err)
			}
			assertBitIdentical(t, label, got, want)

			gn, err := p.Count(WithRanking(a.agg))
			if err != nil {
				t.Fatalf("%s delta count: %v", label, err)
			}
			wn, err := cold.Count(WithRanking(a.agg))
			if err != nil {
				t.Fatalf("%s cold count: %v", label, err)
			}
			if gn != wn {
				t.Fatalf("%s: delta count %d, cold %d", label, gn, wn)
			}
		}
		// Fixed-seed sampling over the new epoch equals a cold handle's:
		// each epoch rebuilds its sampler from the updated relations.
		gs, gerr := p.Sample(4, WithSeed(uint64(seed)+uint64(round)))
		ws, werr := cold.Sample(4, WithSeed(uint64(seed)+uint64(round)))
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("round %d sample: delta err %v, cold err %v", round, gerr, werr)
		}
		assertBitIdentical(t, fmt.Sprintf("round %d sample", round), gs, ws)
	}
	if got := p.PlanStats(); got.Epoch != p.Epoch() {
		t.Fatalf("PlanStats epoch %d, Epoch() %d", got.Epoch, p.Epoch())
	}
}

func edgeIndex(inst *workload.Instance, name string) int {
	for i, e := range inst.H.Edges {
		if e.Name == name {
			return i
		}
	}
	panic("unknown relation " + name)
}

// TestDeltaRebuildParity is the main corpus: warm handles (the
// incremental patch path). Seeds 0..15 at nRels=6 cover all five plan
// kinds — acyclic, triangle, four-cycle, longer cycle, and GHD.
func TestDeltaRebuildParity(t *testing.T) {
	for seed := 0; seed < 16; seed++ {
		inst := workload.RandomCQ(6, 20, 8, 0, workload.UniformWeights(), uint64(seed))
		t.Run(fmt.Sprintf("seed=%d/rels=%d", seed, len(inst.H.Edges)), func(t *testing.T) {
			deltaParityCase(t, inst, int64(seed)*101+7, 3, true)
		})
	}
}

// TestDeltaRebuildParityLazy builds no artefacts before the deltas: the
// first Run after ApplyDelta compiles against the patched epoch state.
func TestDeltaRebuildParityLazy(t *testing.T) {
	for seed := 0; seed < 9; seed++ {
		inst := workload.RandomCQ(6, 20, 8, 0, workload.UniformWeights(), uint64(seed))
		t.Run(fmt.Sprintf("seed=%d/rels=%d", seed, len(inst.H.Edges)), func(t *testing.T) {
			deltaParityCase(t, inst, int64(seed)*313+11, 2, false)
		})
	}
}

// TestDeltaCostBasedParity covers the cost-based GHD delta path (the
// incremental rebuild with a statistics-chosen decomposition and
// variable orders). The delta handle keeps its compile-time
// decomposition while a cold handle re-searches from fresh statistics,
// so the two may legally differ in plan structure; results are matched
// as a (tuple, weight) multiset with floating-point tolerance, the way
// the brute-force corpus does.
func TestDeltaCostBasedParity(t *testing.T) {
	for _, seed := range []int{5, 6, 14, 15} { // ghd shapes at nRels=6
		inst := workload.RandomCQ(6, 20, 8, 0, workload.UniformWeights(), uint64(seed))
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mirrors := make([]*dataMirror, len(inst.Rels))
			for i, r := range inst.Rels {
				m := &dataMirror{}
				for j, tup := range r.Tuples {
					m.tuples = append(m.tuples, append(Tuple(nil), tup...))
					m.weights = append(m.weights, r.Weights[j])
				}
				mirrors[i] = m
			}
			p, err := Compile(mirrorQuery(inst, mirrors))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.TopK(1); err != nil { // warm SumCost
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(seed)*977 + 3))
			for round := 0; round < 2; round++ {
				batch := randomBatch(rng, inst, mirrors, 8)
				if err := p.ApplyDelta(batch); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for i := range batch {
					mirrors[edgeIndex(inst, batch[i].Rel)].apply(batch[i])
				}
				cold, err := Compile(mirrorQuery(inst, mirrors))
				if err != nil {
					t.Fatal(err)
				}
				got, err := p.TopK(0)
				if err != nil {
					t.Fatal(err)
				}
				want, err := cold.TopK(0)
				if err != nil {
					t.Fatal(err)
				}
				gg, ww := engineGroups(got), engineGroups(want)
				if len(gg) != len(ww) {
					t.Fatalf("round %d: delta produced %d distinct tuples, cold %d", round, len(gg), len(ww))
				}
				for key, wvals := range ww {
					gvals, ok := gg[key]
					if !ok || len(gvals) != len(wvals) {
						t.Fatalf("round %d tuple %s: delta multiplicity %d, cold %d", round, key, len(gvals), len(wvals))
					}
					for i := range wvals {
						if diff := gvals[i] - wvals[i]; diff > 1e-9 || diff < -1e-9 {
							t.Fatalf("round %d tuple %s weight %d: delta %v, cold %v", round, key, i, gvals[i], wvals[i])
						}
					}
				}
			}
		})
	}
}

// TestDeltaValidation pins ApplyDelta's error and no-op contracts: bad
// batches reject without touching the handle, and a batch that changes
// no rows does not advance the epoch.
func TestDeltaValidation(t *testing.T) {
	inst := workload.RandomCQ(3, 10, 6, 0, workload.UniformWeights(), 1)
	p, err := Compile(mirrorQuery(inst, func() []*dataMirror {
		ms := make([]*dataMirror, len(inst.Rels))
		for i, r := range inst.Rels {
			ms[i] = &dataMirror{tuples: r.Tuples, weights: r.Weights}
		}
		return ms
	}()))
	if err != nil {
		t.Fatal(err)
	}
	name := inst.H.Edges[0].Name
	arity := len(inst.H.Edges[0].Vars)
	if err := p.ApplyDelta([]Delta{{Rel: "nope", Append: []Tuple{make(Tuple, 2)}}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := p.ApplyDelta([]Delta{{Rel: name, Append: []Tuple{make(Tuple, arity+1)}}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := p.ApplyDelta([]Delta{{Rel: name, Append: []Tuple{make(Tuple, arity)}, AppendWeights: []float64{1, 2}}}); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if got := p.Epoch(); got != 1 {
		t.Fatalf("failed deltas advanced epoch to %d", got)
	}
	miss := make(Tuple, arity)
	for c := range miss {
		miss[c] = 999
	}
	if err := p.ApplyDelta([]Delta{{Rel: name, Delete: []Tuple{miss}}}); err != nil {
		t.Fatal(err)
	}
	if got := p.Epoch(); got != 1 {
		t.Fatalf("no-op delta advanced epoch to %d", got)
	}
	if err := p.ApplyDelta([]Delta{{Rel: name, Append: []Tuple{make(Tuple, arity)}}}); err != nil {
		t.Fatal(err)
	}
	if got := p.Epoch(); got != 2 {
		t.Fatalf("effective delta left epoch at %d", got)
	}
	st := p.PlanStats()
	if st.DeltasApplied != 1 || st.DeltaAppendedRows != 1 {
		t.Fatalf("delta counters = %+v", st)
	}
}
