package repro

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/workload"
)

// prepCases builds one query of each supported shape: acyclic path,
// triangle, 4-cycle, and a long (5-) cycle.
func prepCases() map[string]func() *Query {
	pathQ := func() *Query {
		inst := workload.Path(3, 60, 8, workload.UniformWeights(), 5)
		q := NewQuery()
		for i, r := range inst.Rels {
			q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
		}
		return q
	}
	graphQ := func(vars [][]string) func() *Query {
		return func() *Query {
			g := workload.RandomGraph(12, 70, workload.UniformWeights(), 9)
			q := NewQuery()
			for i, vs := range vars {
				name := "E" + string(rune('1'+i))
				q.Rel(name, vs, g.Edges.Tuples, g.Edges.Weights)
			}
			return q
		}
	}
	return map[string]func() *Query{
		"acyclic":  pathQ,
		"triangle": graphQ([][]string{{"A", "B"}, {"B", "C"}, {"C", "A"}}),
		"fourcycle": graphQ([][]string{
			{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "A"}}),
		"longcycle": graphQ([][]string{
			{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}, {"E", "A"}}),
	}
}

// TestPreparedMatchesOneShot checks that a Prepared handle yields
// exactly the one-shot results for every shape and variant — including
// repeated Runs off the same handle.
func TestPreparedMatchesOneShot(t *testing.T) {
	for name, mk := range prepCases() {
		t.Run(name, func(t *testing.T) {
			p, err := Compile(mk())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []Variant{Eager, Lazy, Quick, All, Take2, Rec, Batch} {
				want, err := mk().TopK(SumCost, v, 0)
				if err != nil {
					t.Fatalf("%s one-shot: %v", v, err)
				}
				for rep := 0; rep < 2; rep++ {
					got, err := p.TopK(0, WithRanking(SumCost), WithVariant(v))
					if err != nil {
						t.Fatalf("%s prepared run %d: %v", v, rep, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s run %d: %d results, one-shot %d", v, rep, len(got), len(want))
					}
					for i := range got {
						if math.Abs(got[i].Weight-want[i].Weight) > 1e-9 {
							t.Fatalf("%s run %d: weight mismatch at rank %d: %g vs %g",
								v, rep, i, got[i].Weight, want[i].Weight)
						}
					}
				}
			}
		})
	}
}

// TestPreparedRankingSwitch runs one handle under several ranking
// functions and checks each against the one-shot path.
func TestPreparedRankingSwitch(t *testing.T) {
	mk := prepCases()["acyclic"]
	p, err := Compile(mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []interface {
		Identity() float64
		Combine(a, b float64) float64
		Less(a, b float64) bool
		Name() string
	}{SumCost, MaxCost, SumBenefit} {
		want, err := mk().TopK(agg, Lazy, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.TopK(10, WithRanking(agg), WithVariant(Lazy))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d vs %d results", agg.Name(), len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Weight-want[i].Weight) > 1e-9 {
				t.Fatalf("%s: weight mismatch at %d", agg.Name(), i)
			}
		}
	}
}

// TestIteratorClose checks that Close mid-enumeration terminates
// cleanly with ErrClosed on every shape, and that a full natural drain
// followed by Close leaves Err nil.
func TestIteratorClose(t *testing.T) {
	for name, mk := range prepCases() {
		t.Run(name, func(t *testing.T) {
			p, err := Compile(mk())
			if err != nil {
				t.Fatal(err)
			}
			it, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := it.Next(); !ok {
				t.Skip("instance produced no results")
			}
			if err := it.Close(); err != nil {
				t.Fatalf("Close returned %v", err)
			}
			if _, ok := it.Next(); ok {
				t.Fatal("Next produced a result after Close")
			}
			if !errors.Is(it.Err(), ErrClosed) {
				t.Fatalf("Err after early Close = %v, want ErrClosed", it.Err())
			}
			if err := it.Close(); err != nil {
				t.Fatalf("second Close returned %v", err)
			}

			// A drained iterator closes cleanly.
			it2, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			for {
				if _, ok := it2.Next(); !ok {
					break
				}
			}
			it2.Close()
			if it2.Err() != nil {
				t.Fatalf("Err after drain+Close = %v, want nil", it2.Err())
			}
		})
	}
}

// TestIteratorCancel checks that context cancellation terminates
// enumeration with the context's error on every shape.
func TestIteratorCancel(t *testing.T) {
	for name, mk := range prepCases() {
		t.Run(name, func(t *testing.T) {
			p, err := Compile(mk())
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			it, err := p.Run(WithContext(ctx))
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			if _, ok := it.Next(); !ok {
				t.Skip("instance produced no results")
			}
			cancel()
			if _, ok := it.Next(); ok {
				t.Fatal("Next produced a result after cancellation")
			}
			if !errors.Is(it.Err(), context.Canceled) {
				t.Fatalf("Err after cancel = %v, want context.Canceled", it.Err())
			}
		})
	}
}

// TestPreparedWithK checks the per-run k limit.
func TestPreparedWithK(t *testing.T) {
	p, err := Compile(prepCases()["acyclic"]())
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Run(WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("WithK(3) yielded %d results", n)
	}
	all, err := p.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= 3 {
		t.Fatalf("instance too small for the limit to bite: %d results", len(all))
	}
}

// TestPreparedConcurrentRuns exercises one handle from several
// goroutines with mixed variants and rankings.
func TestPreparedConcurrentRuns(t *testing.T) {
	mk := prepCases()["acyclic"]
	p, err := Compile(mk())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mk().TopK(SumCost, Lazy, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		v := []Variant{Lazy, Eager, Rec, Batch}[g%4]
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.TopK(5, WithVariant(v))
			if err != nil {
				errs <- err
				return
			}
			for i := range got {
				if math.Abs(got[i].Weight-want[i].Weight) > 1e-9 {
					errs <- errors.New("concurrent run weight mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedCountAndIsEmpty checks the counting helpers on the
// prepared handle against the one-shot facade.
func TestPreparedCountAndIsEmpty(t *testing.T) {
	for name, mk := range prepCases() {
		t.Run(name, func(t *testing.T) {
			p, err := Compile(mk())
			if err != nil {
				t.Fatal(err)
			}
			want, err := mk().Count()
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Count()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Count = %d, one-shot %d", got, want)
			}
			empty, err := p.IsEmpty()
			if err != nil {
				t.Fatal(err)
			}
			if empty != (want == 0) {
				t.Fatalf("IsEmpty = %v with %d results", empty, want)
			}
		})
	}
}

// TestCompileErrors checks builder and shape errors surface at compile
// time.
func TestCompileErrors(t *testing.T) {
	if _, err := Compile(NewQuery()); err == nil {
		t.Error("empty query should fail to compile")
	}
	bad := NewQuery().Rel("R", []string{"A", "B"}, []Tuple{{1}}, nil)
	if _, err := Compile(bad); err == nil {
		t.Error("arity mismatch should fail to compile")
	}
	e := []Tuple{{1, 2}}
	shape := NewQuery().
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil).
		Rel("E3", []string{"C", "A"}, e, nil).
		Rel("E4", []string{"B", "D"}, e, nil).
		Rel("E5", []string{"D", "C"}, e, nil)
	if _, err := Compile(shape); err != nil {
		t.Errorf("fused-triangle shape should compile via the GHD planner: %v", err)
	}
	if _, err := Compile(NewQuery().
		Rel("R", []string{"A", "B"}, e, nil).
		Rel("R", []string{"B", "C"}, e, nil)); err == nil {
		t.Error("duplicate relation name should fail to compile")
	}
	if _, err := Compile(NewQuery().
		Rel("R", []string{"A", "A"}, []Tuple{{1, 1}}, nil)); err == nil {
		t.Error("repeated atom variable should fail to compile")
	}
	p, err := Compile(prepCases()["acyclic"]())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(WithVariant(Variant("Nope"))); err == nil {
		t.Error("unknown variant should fail at Run")
	}
}
