package repro

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/ranking"
	"repro/internal/workload"
)

// instanceQuery binds a workload instance's relations to its hypergraph.
func instanceQuery(inst *workload.Instance) *Query {
	q := NewQuery()
	for i, e := range inst.H.Edges {
		q.Rel(e.Name, e.Vars, inst.Rels[i].Tuples, inst.Rels[i].Weights)
	}
	return q
}

// chordedInstance is the pinned Zipf-skewed chorded 5-cycle the
// optimizer demonstrations run on (the same shape cmd/anyk-bench
// benchmarks, at a test-sized scale).
func chordedInstance() *workload.Instance {
	return workload.SkewedChordedCycle(400, 100, 5, 1.1, workload.UniformWeights(), 42)
}

var optimizerAggs = []ranking.Aggregate{SumCost, SumBenefit, MaxCost, MinBenefit, ProductCost}

// TestOptimizerChordedCycleCheaper pins the tentpole's demonstration:
// on the Zipf-skewed chorded 5-cycle, cost-based planning picks a
// different decomposition than the structural heuristic and
// materialises strictly fewer tuples for it.
func TestOptimizerChordedCycleCheaper(t *testing.T) {
	inst := chordedInstance()
	ph, err := Compile(instanceQuery(inst), WithStatistics(nil))
	if err != nil {
		t.Fatal(err)
	}
	po, err := Compile(instanceQuery(inst))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ph.TopK(1); err != nil {
		t.Fatal(err)
	}
	if _, err := po.TopK(1); err != nil {
		t.Fatal(err)
	}
	sh, so := ph.PlanStats(), po.PlanStats()
	if sh.CostBased {
		t.Fatalf("WithStatistics(nil) compile reports cost_based")
	}
	if !so.CostBased {
		t.Fatalf("default compile does not report cost_based")
	}
	if sh.Decomposition == so.Decomposition {
		t.Fatalf("optimizer picked the heuristic decomposition %s — the skewed fixture no longer separates them", sh.Decomposition)
	}
	th, to := sh.Rankings[0].TotalMaterialized, so.Rankings[0].TotalMaterialized
	if to >= th {
		t.Fatalf("optimized plan %s materialises %d tuples, heuristic %s only %d",
			so.Decomposition, to, sh.Decomposition, th)
	}
	t.Logf("heuristic %s total=%d; optimized %s total=%d (%.1fx less)",
		sh.Decomposition, th, so.Decomposition, to, float64(th)/float64(to))
}

// TestOptimizerParity confirms optimizer-chosen plans return identical
// results to heuristic plans across all five aggregates, on the skewed
// chorded cycle, a 4-clique, an acyclic path, and a triangle (the
// shapes covering the generic GHD, acyclic, and fast-path compile
// kinds).
func TestOptimizerParity(t *testing.T) {
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 7)
	shapes := []struct {
		name string
		q    func() *Query
	}{
		{"chorded-cycle", func() *Query { return instanceQuery(chordedInstance()) }},
		{"k4", func() *Query {
			return graphQuery(g, []atomSpec{
				{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"C", "D"}},
				{"R4", []string{"A", "D"}}, {"R5", []string{"A", "C"}}, {"R6", []string{"B", "D"}},
			})
		}},
		{"path", func() *Query {
			return graphQuery(g, []atomSpec{
				{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"C", "D"}},
			})
		}},
		{"triangle", func() *Query {
			return graphQuery(g, []atomSpec{
				{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"C", "A"}},
			})
		}},
	}
	for _, sh := range shapes {
		ph, err := Compile(sh.q(), WithStatistics(nil))
		if err != nil {
			t.Fatalf("%s: heuristic compile: %v", sh.name, err)
		}
		po, err := Compile(sh.q())
		if err != nil {
			t.Fatalf("%s: optimized compile: %v", sh.name, err)
		}
		for _, agg := range optimizerAggs {
			rh, err := ph.TopK(0, WithRanking(agg))
			if err != nil {
				t.Fatalf("%s/%s: heuristic run: %v", sh.name, agg.Name(), err)
			}
			ro, err := po.TopK(0, WithRanking(agg))
			if err != nil {
				t.Fatalf("%s/%s: optimized run: %v", sh.name, agg.Name(), err)
			}
			if err := sameResults(rh, ro); err != nil {
				t.Fatalf("%s/%s: %v", sh.name, agg.Name(), err)
			}
		}
	}
}

// sameResults checks two ranked result sets are identical: equal weight
// sequences, and equal tuple multisets (enumeration may break weight
// ties differently between plans, so tuples compare order-insensitively).
func sameResults(a, b []Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("result counts differ: %d vs %d", len(a), len(b))
	}
	keys := func(rs []Result) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = fmt.Sprint(r.Tuple)
		}
		sort.Strings(out)
		return out
	}
	ka, kb := keys(a), keys(b)
	for i := range a {
		if math.Abs(a[i].Weight-b[i].Weight) > 1e-9 {
			return fmt.Errorf("weight %d differs: %g vs %g", i, a[i].Weight, b[i].Weight)
		}
		if ka[i] != kb[i] {
			return fmt.Errorf("tuple multisets differ at %d: %s vs %s", i, ka[i], kb[i])
		}
	}
	return nil
}

// TestPlanStatsEstimates covers the estimator surface: estimated vs
// actual bag sizes, the error factor, and the recost flag.
func TestPlanStatsEstimates(t *testing.T) {
	p, err := Compile(instanceQuery(chordedInstance()))
	if err != nil {
		t.Fatal(err)
	}
	st := p.PlanStats()
	if !st.CostBased || st.EstOutput <= 0 || len(st.EstBagSizes) == 0 {
		t.Fatalf("cost-based compile missing estimates: %+v", st)
	}
	if st.EstimatorError != 0 {
		t.Fatalf("estimator error %g before any ranking was built", st.EstimatorError)
	}
	if _, err := p.TopK(1); err != nil {
		t.Fatal(err)
	}
	st = p.PlanStats()
	if st.EstimatorError < 1 {
		t.Fatalf("estimator error %g after build, want >= 1", st.EstimatorError)
	}
	// The recost flag is the threshold comparison, checked on both sides
	// by moving the (package-variable) threshold around the plan's error.
	defer func(old float64) { RecostThreshold = old }(RecostThreshold)
	RecostThreshold = st.EstimatorError + 1
	if p.PlanStats().NeedsRecost {
		t.Fatalf("needs_recost with threshold %g above error %g", RecostThreshold, st.EstimatorError)
	}
	RecostThreshold = st.EstimatorError - 0.5
	if !p.PlanStats().NeedsRecost {
		t.Fatalf("needs_recost not set with threshold %g below error %g", RecostThreshold, st.EstimatorError)
	}

	// Acyclic handles compare the output estimate against the exact
	// solution count known at compile time.
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 7)
	pa, err := Compile(graphQuery(g, []atomSpec{
		{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	sta := pa.PlanStats()
	if !sta.CostBased || sta.EstimatorError < 1 {
		t.Fatalf("acyclic estimator stats missing: %+v", sta)
	}
}
