package repro

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/yannakakis"
)

// ErrClosed is reported by Iterator.Err after Close terminates
// enumeration before it was exhausted.
var ErrClosed = core.ErrClosed

// queryKind classifies the shape a query compiled to.
type queryKind int

const (
	kindAcyclic queryKind = iota
	kindTriangle
	kindFourCycle
	kindLongCycle
	kindGeneric // arbitrary cyclic shape via the GHD planner
)

// Prepared is a compiled query: hypergraph analysis, acyclicity/cycle
// detection, and join-tree or decomposition planning run once at
// Compile time, and the resulting plan is reused by every Run. The
// per-ranking physical artefacts — the T-DP instantiation for acyclic
// queries, the materialised bags for cyclic ones — are built on the
// first Run with each ranking function and cached on the handle, so
// thousands of top-k requests with different k, ranking functions, or
// algorithm variants share one compilation.
//
// A Prepared handle is immutable after Compile and safe for concurrent
// Run/TopK/Count/IsEmpty calls; the iterators it returns are not.
type Prepared struct {
	outAttrs []string
	kind     queryKind

	// Acyclic: the validated query (for Count/IsEmpty counting passes)
	// plus the aggregate-independent T-DP plan.
	yq   *yannakakis.Query
	plan *dp.Plan

	// Cyclic cycle shapes: the relations reordered (and, for edges
	// declared against the walk direction, column-flipped) to follow the
	// cycle.
	cycleRels []*relation.Relation

	// Generic cyclic shapes: the query's hyperedges and relations plus
	// the decomposition found at compile time (the structural search
	// runs once; only the per-aggregate bag materialisation is
	// deferred to the first Run with each ranking function).
	ghdEdges []hypergraph.Edge
	ghdRels  []*relation.Relation
	ghdDec   *hypergraph.Decomposition

	// workers is the compile-time default parallelism for the prepare
	// phase (bag materialisation); WithParallelism on a Run overrides it
	// for the build that run triggers.
	workers int

	tdps    onceCache[*dp.TDP]      // acyclic: T-DP per ranking function
	decomps onceCache[*decomp.Plan] // cyclic: decomposition per ranking function
}

// onceCache memoizes one value per ranking function. The mutex guards
// only the map; each entry builds under its own sync.Once, so a cold
// build for one ranking function never blocks cache hits for another.
// Aggregates whose dynamic type is not comparable (and so cannot be a
// map key) are built fresh on every call.
type onceCache[V any] struct {
	mu sync.Mutex
	m  map[ranking.Aggregate]*onceEntry[V]
}

type onceEntry[V any] struct {
	once sync.Once
	v    V
	err  error
}

// get returns the cached value for agg, building it with this caller's
// build closure on a cache miss. ctx is the calling run's context: when
// the winning build fails with a cancellation error, the entry is
// dropped (a canceled prepare must not poison the cache) and callers
// whose own context is still live retry with a fresh entry — so one
// run's cancellation can never fail a concurrent run that supplied a
// healthy context.
func (c *onceCache[V]) get(ctx context.Context, agg ranking.Aggregate, build func(ranking.Aggregate) (V, error)) (V, error) {
	if !reflect.TypeOf(agg).Comparable() {
		return build(agg)
	}
	for {
		c.mu.Lock()
		if c.m == nil {
			c.m = make(map[ranking.Aggregate]*onceEntry[V])
		}
		e, ok := c.m[agg]
		if !ok {
			e = &onceEntry[V]{}
			c.m[agg] = e
		}
		c.mu.Unlock()
		e.once.Do(func() { e.v, e.err = build(agg) })
		if e.err == nil || (!errors.Is(e.err, context.Canceled) && !errors.Is(e.err, context.DeadlineExceeded)) {
			return e.v, e.err
		}
		c.mu.Lock()
		if c.m[agg] == e {
			delete(c.m, agg)
		}
		c.mu.Unlock()
		if ctx.Err() != nil {
			// The cancellation is (or might as well be) our own: report it.
			return e.v, e.err
		}
	}
}

// Compile analyses and plans the query once, returning a reusable
// handle. Acyclic queries are planned onto the T-DP join tree; triangle,
// 4-cycle, and longer cycle queries onto their canonical decompositions
// (see Ranked for the per-shape plans); every other cyclic shape runs
// the generalized-hypertree-decomposition search and compiles onto the
// resulting bag tree.
//
// Of the run options only WithParallelism is consulted at compile time:
// it sets the handle's default prepare parallelism (how many workers
// materialise decomposition bags on the first Run with each ranking
// function). The other options are per-run and ignored here.
func Compile(q *Query, opts ...RunOption) (*Prepared, error) {
	if q.err != nil {
		return nil, q.err
	}
	if len(q.rels) == 0 {
		return nil, fmt.Errorf("repro: empty query")
	}
	cfg := runConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	h := hypergraph.New(q.edges...)
	if h.IsAcyclic() {
		yq, err := yannakakis.NewQuery(h, q.rels)
		if err != nil {
			return nil, err
		}
		plan, err := dp.NewPlan(yq)
		if err != nil {
			return nil, err
		}
		return &Prepared{
			outAttrs: plan.OutAttrs(),
			kind:     kindAcyclic,
			yq:       yq,
			plan:     plan,
			workers:  cfg.workers,
		}, nil
	}
	if l, rels, ok := q.matchCycle(); ok {
		p := &Prepared{cycleRels: rels, workers: cfg.workers}
		switch l {
		case 3:
			p.kind, p.outAttrs = kindTriangle, decomp.TriangleAttrs
		case 4:
			p.kind, p.outAttrs = kindFourCycle, decomp.FourCycleAttrs
		default:
			p.kind, p.outAttrs = kindLongCycle, decomp.CycleAttrs(l)
		}
		return p, nil
	}
	// Arbitrary cyclic shape: search for a generalized hypertree
	// decomposition now (structure only — bags materialise lazily per
	// ranking function on first Run).
	dec, err := h.Decompose()
	if err != nil {
		return nil, fmt.Errorf("repro: cyclic query %s: %w", h, err)
	}
	return &Prepared{
		outAttrs: decomp.GHDAttrs(q.edges),
		kind:     kindGeneric,
		ghdEdges: q.edges,
		ghdRels:  q.rels,
		ghdDec:   dec,
		workers:  cfg.workers,
	}, nil
}

// Prepare is Compile as a method on the query builder.
func (q *Query) Prepare(opts ...RunOption) (*Prepared, error) { return Compile(q, opts...) }

// OutAttrs returns the output schema every iterator of this handle
// yields. The returned slice must not be modified.
func (p *Prepared) OutAttrs() []string { return p.outAttrs }

// runConfig collects the per-execution options of one Run.
type runConfig struct {
	agg        ranking.Aggregate
	variant    Variant
	k          int
	ctx        context.Context
	workers    int
	workersSet bool
}

// RunOption configures one execution of a Prepared query. The defaults
// are WithRanking(SumCost), WithVariant(Lazy), no k limit, and
// context.Background().
type RunOption func(*runConfig)

// WithRanking selects the ranking function for this run. The first run
// with each ranking function pays one linear pass (and, for cyclic
// shapes, the bag materialisation); later runs reuse it.
func WithRanking(agg ranking.Aggregate) RunOption { return func(c *runConfig) { c.agg = agg } }

// WithVariant selects the any-k algorithm variant for this run.
// Triangle queries enumerate a single sorted bag and ignore it.
func WithVariant(v Variant) RunOption { return func(c *runConfig) { c.variant = v } }

// WithK limits the run to the k best results (k <= 0 means no limit).
// Enumeration is lazy either way; the limit only caps Next.
func WithK(k int) RunOption { return func(c *runConfig) { c.k = k } }

// WithContext attaches a cancellation context to the run: once ctx is
// done, the iterator's Next returns false and Err reports ctx.Err().
// The context also covers the prepare work a first Run with a new
// ranking function triggers (bag materialisation for cyclic shapes):
// cancellation there fails the Run with ctx.Err(), and a later Run
// simply rebuilds — a canceled prepare is never cached.
func WithContext(ctx context.Context) RunOption { return func(c *runConfig) { c.ctx = ctx } }

// WithParallelism sets how many workers materialise decomposition bags
// during the prepare phase of cyclic queries (the first Run with each
// ranking function): independent bags build concurrently, and leftover
// workers partition the first join variable inside each Generic-Join
// bag. n <= 0 selects GOMAXPROCS; the default is 1 (sequential).
//
// Parallel preparation is bit-identical to sequential preparation —
// same bag contents and order, same Stats — so the only observable
// difference is latency. Passed to Compile it sets the handle's
// default; passed to Run it overrides the default for the build that
// run triggers. Enumeration itself is unaffected.
func WithParallelism(n int) RunOption {
	return func(c *runConfig) {
		c.workers = parallel.Degree(n)
		c.workersSet = true
	}
}

// Run executes the compiled plan and returns a ranked iterator. Always
// Close the iterator (idempotent) and check Err after Next reports
// false. Concurrent Runs on one handle are safe and share the cached
// per-ranking plan.
func (p *Prepared) Run(opts ...RunOption) (Iterator, error) {
	cfg := runConfig{agg: SumCost, variant: Lazy, ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	var it Iterator
	if p.kind == kindAcyclic {
		t, err := p.tdpFor(cfg.agg, cfg.ctx)
		if err != nil {
			return nil, err
		}
		it, err = core.New(cfg.ctx, t, cfg.variant)
		if err != nil {
			return nil, err
		}
	} else {
		workers := p.workers
		if cfg.workersSet {
			workers = cfg.workers
		}
		d, err := p.decompFor(cfg.agg, cfg.ctx, workers)
		if err != nil {
			return nil, err
		}
		it, err = d.Run(cfg.ctx, cfg.variant)
		if err != nil {
			return nil, err
		}
	}
	if cfg.k > 0 {
		it = core.Limit(it, cfg.k)
	}
	return it, nil
}

// TopK runs the plan and collects the k best results (k <= 0 collects
// everything). The iterator is closed before returning; a cancellation
// error is returned alongside the results collected so far.
func (p *Prepared) TopK(k int, opts ...RunOption) ([]Result, error) {
	it, err := p.Run(append(append([]RunOption(nil), opts...), WithK(k))...)
	if err != nil {
		return nil, err
	}
	out := core.Collect(it, k)
	err = it.Err()
	it.Close()
	return out, err
}

// Count returns the number of join results without materialising them.
// Acyclic queries use the counting pass over the compiled (already
// reduced) plan; cyclic shapes drain a ranked iterator (honoring
// WithContext). Any WithK option is ignored — Count always reports the
// full cardinality.
func (p *Prepared) Count(opts ...RunOption) (int, error) {
	if p.kind == kindAcyclic {
		return p.plan.NumSolutions(), nil
	}
	it, err := p.Run(append(append([]RunOption(nil), opts...), WithK(0))...)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n, it.Err()
		}
		n++
	}
}

// IsEmpty answers the Boolean query "does the join have any result?"
// with early termination.
func (p *Prepared) IsEmpty(opts ...RunOption) (bool, error) {
	if p.kind == kindAcyclic {
		return p.plan.Empty(), nil
	}
	it, err := p.Run(opts...)
	if err != nil {
		return false, err
	}
	defer it.Close()
	_, ok := it.Next()
	if err := it.Err(); err != nil {
		return false, err
	}
	return !ok, nil
}

// tdpFor returns (instantiating and caching on first use) the T-DP of
// the acyclic plan under agg. Instantiate is not cancelable, so the
// context only matters for the cache's retry-on-cancel policy (which
// never triggers here).
func (p *Prepared) tdpFor(agg ranking.Aggregate, ctx context.Context) (*dp.TDP, error) {
	return p.tdps.get(ctx, agg, p.plan.Instantiate)
}

// decompFor returns (building and caching on first use) the cyclic
// decomposition plan under agg: a Generic-Join bag for the triangle,
// the submodular-width union of three trees for the 4-cycle, the
// fhtw-2 fan plan for longer cycles, and the GHD bag tree for every
// other cyclic shape. The ctx and worker count only matter to the Run
// that triggers the build; cache hits ignore them. Parallel builds are
// bit-identical to sequential ones, so the cached plan does not depend
// on which Run won the build.
func (p *Prepared) decompFor(agg ranking.Aggregate, ctx context.Context, workers int) (*decomp.Plan, error) {
	return p.decomps.get(ctx, agg, func(a ranking.Aggregate) (*decomp.Plan, error) {
		return p.buildDecomp(a, ctx, workers)
	})
}

func (p *Prepared) buildDecomp(agg ranking.Aggregate, ctx context.Context, workers int) (*decomp.Plan, error) {
	opts := []decomp.PrepareOption{decomp.WithWorkers(workers), decomp.WithContext(ctx)}
	switch p.kind {
	case kindTriangle:
		var three [3]*relation.Relation
		copy(three[:], p.cycleRels)
		return decomp.PrepareTriangle(three, agg, opts...)
	case kindFourCycle:
		var four [4]*relation.Relation
		copy(four[:], p.cycleRels)
		return decomp.PrepareFourCycleSubmodular(four, agg, opts...)
	case kindGeneric:
		return decomp.PrepareGHDWith(p.ghdDec, p.ghdEdges, p.ghdRels, agg, opts...)
	default:
		return decomp.PrepareCycleSingleTree(p.cycleRels, agg, opts...)
	}
}
