package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/sample"
	"repro/internal/wcoj"
	"repro/internal/yannakakis"
)

// ErrClosed is reported by Iterator.Err after Close terminates
// enumeration before it was exhausted.
var ErrClosed = core.ErrClosed

// queryKind classifies the shape a query compiled to.
type queryKind int

const (
	kindAcyclic queryKind = iota
	kindTriangle
	kindFourCycle
	kindLongCycle
	kindGeneric // arbitrary cyclic shape via the GHD planner
)

// Prepared is a compiled query: hypergraph analysis, acyclicity/cycle
// detection, and join-tree or decomposition planning run once at
// Compile time, and the resulting plan is reused by every Run. The
// per-ranking physical artefacts — the T-DP instantiation for acyclic
// queries, the materialised bags for cyclic ones — are built on the
// first Run with each ranking function and cached on the handle, so
// thousands of top-k requests with different k, ranking functions, or
// algorithm variants share one compilation.
//
// A handle is epoch-versioned: ApplyDelta installs a new epoch of
// prepared state for updated input data, patching the previous epoch's
// artefacts incrementally instead of recompiling. Everything structural
// — the query shape, join tree, chosen decomposition, output schema —
// is fixed at Compile time and shared by every epoch; only the data-
// dependent artefacts (reduced relations, groupings, π weights, bags,
// statistics-derived sizes) advance.
//
// A Prepared handle is safe for concurrent Run/TopK/Count/IsEmpty/
// Sample/ApplyDelta calls; the iterators it returns are not. Runs
// concurrent with an ApplyDelta see either the old or the new epoch,
// atomically; iterators already running keep enumerating their epoch's
// state to completion.
type Prepared struct {
	outAttrs []string
	kind     queryKind
	fp       string // Query.Fingerprint, computed once at Compile

	// srcEdges retains the validated query atoms (hyperedges) in
	// declaration order — the epoch-independent half of the query; each
	// epoch's planState carries the srcRels aligned with them.
	srcEdges []hypergraph.Edge

	// Cyclic cycle shapes: the walk order and per-edge flip flags
	// matchCycleShape derived at Compile time, kept so every epoch can
	// re-derive its canonical cycle relations from fresh data.
	cycleOrder []int
	cycleFlip  []bool

	// Generic cyclic shapes: the decomposition found at compile time
	// (the structural search runs once; bag materialisation is deferred
	// to the first Run with each ranking function and patched per epoch).
	ghdDec *hypergraph.Decomposition

	// workers is the compile-time default parallelism for the prepare
	// phase (Instantiate for acyclic queries, bag materialisation for
	// cyclic ones); workersSet records whether WithParallelism was passed
	// to Compile at all. When it was not, the prepare parallelism is
	// chosen per build: GOMAXPROCS when the estimated input size clears
	// prepareParallelThreshold, sequential below it. WithParallelism on a
	// Run overrides both for the build that run triggers.
	workers    int
	workersSet bool

	// costBased records whether a cost model drove this compilation (see
	// WithStatistics); when it did, estOutput is the model's output-
	// cardinality estimate, and estBags its per-bag materialisation
	// estimates for the shapes that expose them (the triangle's single
	// bag, the GHD planner's costed decomposition) — nil for the
	// canonical 4-cycle and fan-cycle plans, whose bag structure is
	// fixed by the shape rather than searched.
	costBased bool
	estOutput float64
	estBags   []float64

	// hints carries the cost model's Misra–Gries heavy hitters into the
	// parallel bag materialisation (wcoj heavy/light partitioning); nil
	// without a cost model.
	hints wcoj.SkewHints

	// state points at the current epoch's prepared artefacts. Readers
	// load it once per call and work against that snapshot; ApplyDelta
	// builds the next epoch aside and swaps the pointer, so in-flight
	// iterators keep their epoch alive until they finish.
	state atomic.Pointer[planState]

	// deltaMu serialises ApplyDelta calls (concurrent deltas would race
	// to build successor epochs from the same base).
	deltaMu sync.Mutex

	// Cumulative delta counters across the handle's lifetime, surfaced
	// by PlanStats.
	deltasApplied        atomic.Int64
	deltaAppendedRows    atomic.Int64
	deltaDeletedRows     atomic.Int64
	deltaBagsReused      atomic.Int64
	deltaBagsRebuilt     atomic.Int64
	deltaNodesReused     atomic.Int64
	deltaNodesRecomputed atomic.Int64
	lastDeltaNs          atomic.Int64
}

// planState is one epoch of a handle's prepared state: the input
// relations as of that epoch plus every data-dependent artefact derived
// from them. A planState is immutable after it is published via
// Prepared.state (the caches inside fill lazily but never change a
// built entry), so concurrent readers need no locks beyond the caches'
// own.
type planState struct {
	// epoch numbers the state: 1 after Compile, +1 per applied delta.
	epoch int64

	// srcRels are the epoch's relations aligned with Prepared.srcEdges —
	// the uniform answer sampler walks these directly, whatever plan
	// shape the handle compiled to.
	srcRels []*relation.Relation

	// Acyclic: the validated query (for Count/IsEmpty counting passes)
	// plus the aggregate-independent T-DP plan.
	yq   *yannakakis.Query
	plan *dp.Plan

	// Cyclic cycle shapes: the relations reordered (and, for edges
	// declared against the walk direction, column-flipped) to follow the
	// cycle.
	cycleRels []*relation.Relation

	// solutions is the exact output cardinality for acyclic handles,
	// computed once per epoch from the reduced plan's counting pass
	// (an O(total tuples) DP that must not re-run per Count/PlanStats
	// call); -1 for cyclic kinds, whose Count enumerates.
	solutions int

	// estTuples is the estimated total tuple count the prepare phase
	// processes (reduced plan nodes for acyclic queries, input relations
	// for cyclic ones) — the input to the default-parallelism threshold.
	estTuples int

	tdps    onceCache[*dp.TDP]      // acyclic: T-DP per ranking function
	decomps onceCache[*decomp.Plan] // cyclic: decomposition per ranking function

	// The sampler builds lazily on the first Sample call of the epoch
	// (it re-sorts every atom into its own tries) and is cached for the
	// epoch's lifetime; samplePerm maps outAttrs positions to sampler
	// variable positions.
	samplerMu  sync.Mutex
	sampler    *sample.Sampler
	samplerErr error
	samplerSet bool
	samplePerm []int
}

// onceCache memoizes one value per ranking function. The mutex guards
// only the map; each entry builds under its own sync.Once, so a cold
// build for one ranking function never blocks cache hits for another.
// Aggregates whose dynamic type is not comparable (and so cannot be a
// map key) are built fresh on every call.
type onceCache[V any] struct {
	mu sync.Mutex
	m  map[ranking.Aggregate]*onceEntry[V]
}

type onceEntry[V any] struct {
	once sync.Once
	v    V
	err  error
	// done flips to true after a successful build; the atomic store
	// publishes v to concurrent snapshot readers (onceCache.built).
	done atomic.Bool
}

// get returns the cached value for agg, building it with this caller's
// build closure on a cache miss. ctx is the calling run's context: when
// the winning build fails with a cancellation error, the entry is
// dropped (a canceled prepare must not poison the cache) and callers
// whose own context is still live retry with a fresh entry — so one
// run's cancellation can never fail a concurrent run that supplied a
// healthy context.
func (c *onceCache[V]) get(ctx context.Context, agg ranking.Aggregate, build func(ranking.Aggregate) (V, error)) (V, error) {
	if !reflect.TypeOf(agg).Comparable() {
		return build(agg)
	}
	for {
		c.mu.Lock()
		if c.m == nil {
			c.m = make(map[ranking.Aggregate]*onceEntry[V])
		}
		e, ok := c.m[agg]
		if !ok {
			e = &onceEntry[V]{}
			c.m[agg] = e
		}
		c.mu.Unlock()
		e.once.Do(func() {
			e.v, e.err = build(agg)
			if e.err == nil {
				e.done.Store(true)
			}
		})
		if e.err == nil || (!errors.Is(e.err, context.Canceled) && !errors.Is(e.err, context.DeadlineExceeded)) {
			return e.v, e.err
		}
		c.mu.Lock()
		if c.m[agg] == e {
			delete(c.m, agg)
		}
		c.mu.Unlock()
		if ctx.Err() != nil {
			// The cancellation is (or might as well be) our own: report it.
			return e.v, e.err
		}
	}
}

// seed installs an already-built value for agg — the delta path uses it
// to carry patched artefacts into the next epoch's cache so rankings
// that were warm stay warm. No-op for non-comparable aggregates (which
// are never cached).
func (c *onceCache[V]) seed(agg ranking.Aggregate, v V) {
	if !reflect.TypeOf(agg).Comparable() {
		return
	}
	e := &onceEntry[V]{v: v}
	e.once.Do(func() {}) // consume the once: the entry is pre-built
	e.done.Store(true)
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[ranking.Aggregate]*onceEntry[V])
	}
	c.m[agg] = e
	c.mu.Unlock()
}

// built snapshots the successfully built entries: the per-ranking
// artefacts a monitoring endpoint can report without triggering (or
// waiting on) any build. Entries still building, failed, or dropped are
// omitted.
func (c *onceCache[V]) built() map[ranking.Aggregate]V {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[ranking.Aggregate]V, len(c.m))
	for agg, e := range c.m {
		if e.done.Load() {
			out[agg] = e.v
		}
	}
	return out
}

// prepareParallelThreshold is the estimated total tuple count (summed
// across plan nodes or input relations) above which an unset
// WithParallelism resolves to GOMAXPROCS instead of sequential. Below
// it the prepare work is so small that goroutine scheduling costs more
// than it saves: measured with BenchmarkInstantiate* and
// BenchmarkPrepare*, parallel prepare breaks even at a few thousand
// tuples and the fan-out overhead is single-digit microseconds, so
// 8192 keeps tiny queries on the zero-overhead sequential path while
// everything benchmark-sized parallelises. Tests override it to force
// either path deterministically.
var prepareParallelThreshold = 8192

// resolveWorkers picks the prepare parallelism for one build:
// an explicit WithParallelism (set on the Run, else on Compile) always
// wins; otherwise the size threshold decides between GOMAXPROCS and
// sequential.
func resolveWorkers(set bool, workers, estTuples int) int {
	if set {
		return workers
	}
	if estTuples >= prepareParallelThreshold {
		return parallel.Degree(0)
	}
	return 1
}

// prepareWorkers resolves the worker count for a build triggered by a
// Run with config cfg, layering the per-run override over the handle
// default over the size threshold.
func (p *Prepared) prepareWorkers(cfg runConfig, estTuples int) int {
	if cfg.workersSet {
		return cfg.workers
	}
	return resolveWorkers(p.workersSet, p.workers, estTuples)
}

// Compile analyses and plans the query once, returning a reusable
// handle. Acyclic queries are planned onto the T-DP join tree; triangle,
// 4-cycle, and longer cycle queries onto their canonical decompositions
// (see Ranked for the per-shape plans); every other cyclic shape runs
// the generalized-hypertree-decomposition search and compiles onto the
// resulting bag tree.
//
// Compile accepts CompileOptions — which include every RunOption.
// WithParallelism drives the acyclic plan build (full reduction and
// grouping) and sets the handle's default prepare parallelism (how many
// workers run Instantiate or materialise decomposition bags on the
// first Run with each ranking function); when it is omitted,
// parallelism defaults to GOMAXPROCS for inputs above a size threshold
// and sequential below it. WithContext makes the acyclic plan build
// cancelable (a canceled Compile returns ctx.Err() and no handle); it
// is not retained by the handle. WithStatistics/WithCostModel — the
// compile-only options — steer cost-based planning (on by default; see
// WithStatistics). The remaining run options are per-run and ignored
// here.
func Compile(q *Query, opts ...CompileOption) (*Prepared, error) {
	if q.err != nil {
		return nil, q.err
	}
	if len(q.rels) == 0 {
		return nil, fmt.Errorf("repro: empty query")
	}
	cfg := runConfig{}
	for _, o := range opts {
		o.applyCompile(&cfg)
	}
	fp, err := q.Fingerprint()
	if err != nil {
		return nil, err
	}
	// The compile span (and its children below) only record when the
	// caller's context carries an obs trace; otherwise every StartSpan
	// is a free no-op.
	var compileSpan *obs.Span
	cfg.ctx, compileSpan = obs.StartSpan(cfg.ctx, "compile")
	defer compileSpan.End()
	inputTuples := 0
	for _, r := range q.rels {
		inputTuples += r.Len()
	}
	h := hypergraph.New(q.edges...)
	// Resolve the cost model: an explicit WithCostModel wins;
	// WithStatistics(nil) disables cost-based planning entirely;
	// otherwise build one from the supplied catalog (statistics for
	// atoms it misses are collected from the query's relations on the
	// spot — the default-on path when no option was passed at all).
	_, cmSpan := obs.StartSpan(cfg.ctx, "cost-model")
	cm := cfg.cm
	if cm == nil && !(cfg.catSet && cfg.cat == nil) {
		cm = catalog.NewCostModel(q.edges, q.rels, cfg.cat)
	}
	cmSpan.End()
	estOutput := 0.0
	var hints wcoj.SkewHints
	if cm != nil {
		estOutput = cm.EstimateOutput()
		hints = cm.HeavyValues
	}
	if h.IsAcyclic() {
		compileSpan.SetAttr("kind", "acyclic")
		yq, err := yannakakis.NewQuery(h, q.rels)
		if err != nil {
			return nil, err
		}
		// The plan build itself (semi-join sweeps + grouping) runs at the
		// same parallelism a first Run would, estimated from the input
		// size (the reduced size is not known yet), and under the
		// caller's context if one was supplied.
		buildOpts := []dp.Option{dp.WithWorkers(resolveWorkers(cfg.workersSet, cfg.workers, inputTuples))}
		if cfg.ctx != nil {
			buildOpts = append(buildOpts, dp.WithContext(cfg.ctx))
		}
		plan, err := dp.NewPlan(yq, buildOpts...)
		if err != nil {
			return nil, err
		}
		p := &Prepared{
			outAttrs:   plan.OutAttrs(),
			kind:       kindAcyclic,
			fp:         fp,
			srcEdges:   q.edges,
			hints:      hints,
			workers:    cfg.workers,
			workersSet: cfg.workersSet,
			costBased:  cm != nil,
			estOutput:  estOutput,
		}
		p.state.Store(&planState{
			epoch:     1,
			srcRels:   q.rels,
			yq:        yq,
			plan:      plan,
			solutions: plan.NumSolutions(),
			// Instantiate passes run over the reduced plan, so the
			// threshold consults the post-reduction size.
			estTuples: plan.TotalTuples(),
		})
		return p, nil
	}
	if l, rels, ok := q.matchCycle(); ok {
		compileSpan.SetAttr("kind", "cycle")
		// The engine enumerates the canonical cycle positions; the handle
		// labels them with the user's variables in walk order (the same
		// schema Query.OutAttrs reports).
		order, flip, _ := q.matchCycleShape()
		p := &Prepared{
			fp:         fp,
			outAttrs:   cycleWalkVars(q.edges, order, flip),
			cycleOrder: order,
			cycleFlip:  flip,
			srcEdges:   q.edges,
			hints:      hints,
			workers:    cfg.workers,
			workersSet: cfg.workersSet,
			costBased:  cm != nil,
			estOutput:  estOutput,
		}
		switch l {
		case 3:
			p.kind = kindTriangle
			if cm != nil {
				// The triangle plan is a single bag holding the full
				// output, so the output estimate doubles as its bag
				// estimate.
				p.estBags = []float64{estOutput}
			}
		case 4:
			p.kind = kindFourCycle
		default:
			p.kind = kindLongCycle
		}
		p.state.Store(&planState{
			epoch:     1,
			srcRels:   q.rels,
			cycleRels: rels,
			solutions: -1,
			estTuples: inputTuples,
		})
		return p, nil
	}
	// Arbitrary cyclic shape: search for a generalized hypertree
	// decomposition now (structure only — bags materialise lazily per
	// ranking function on first Run). With a cost model the search ranks
	// candidates by estimated materialisation cost instead of the purely
	// structural width criteria. The explicit nil-check matters: an
	// interface holding a typed nil would not reproduce the structural
	// path.
	compileSpan.SetAttr("kind", "ghd")
	var dec *hypergraph.Decomposition
	_, decSpan := obs.StartSpan(cfg.ctx, "decompose")
	if cm != nil {
		dec, err = h.DecomposeCosted(cm)
	} else {
		dec, err = h.Decompose()
	}
	decSpan.End()
	if err != nil {
		return nil, fmt.Errorf("repro: cyclic query %s: %w", h, err)
	}
	if decSpan != nil {
		decSpan.SetAttr("decomposition", dec.String())
	}
	p := &Prepared{
		outAttrs:   decomp.GHDAttrs(q.edges),
		kind:       kindGeneric,
		fp:         fp,
		ghdDec:     dec,
		srcEdges:   q.edges,
		hints:      hints,
		workers:    cfg.workers,
		workersSet: cfg.workersSet,
		costBased:  cm != nil,
		estOutput:  estOutput,
		estBags:    dec.EstBagSizes,
	}
	p.state.Store(&planState{
		epoch:     1,
		srcRels:   q.rels,
		solutions: -1,
		estTuples: inputTuples,
	})
	return p, nil
}

// Prepare is Compile as a method on the query builder.
func (q *Query) Prepare(opts ...CompileOption) (*Prepared, error) { return Compile(q, opts...) }

// OutAttrs returns the output schema every iterator of this handle
// yields. The returned slice must not be modified.
func (p *Prepared) OutAttrs() []string { return p.outAttrs }

// Fingerprint returns the shape fingerprint of the compiled query (see
// Query.Fingerprint), computed once at Compile time.
func (p *Prepared) Fingerprint() string { return p.fp }

// Epoch returns the handle's current data epoch: 1 after Compile,
// incremented by every ApplyDelta that changed at least one relation.
func (p *Prepared) Epoch() int64 { return p.state.Load().epoch }

// PlanStats describes a compiled handle for monitoring: what shape it
// compiled to, how much input the prepare phase processes, and which
// per-ranking physical artefacts have been built so far. The serving
// layer surfaces it from /v1/stats.
type PlanStats struct {
	// Fingerprint is the query-shape fingerprint (Query.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Kind is the compiled shape: "acyclic", "triangle", "four-cycle",
	// "cycle", or "ghd".
	Kind string `json:"kind"`
	// OutAttrs is the output schema of every iterator of the handle.
	OutAttrs []string `json:"out_attrs"`
	// Epoch is the handle's data epoch: 1 after Compile, +1 per applied
	// delta batch that changed at least one relation.
	Epoch int64 `json:"epoch"`
	// EstTuples is the estimated tuple count the prepare phase processes
	// (the input to the default-parallelism threshold).
	EstTuples int `json:"est_tuples"`
	// Solutions is the exact output cardinality for acyclic handles
	// (known from the compiled plan without enumeration), -1 otherwise.
	Solutions int `json:"solutions"`
	// Rankings lists the ranking functions whose physical artefacts
	// (T-DP instantiation or materialised decomposition bags) are built
	// and cached on the handle, sorted by name. A run with any of these
	// rankings does zero preparation.
	Rankings []RankingStats `json:"rankings"`
	// CostBased reports whether a cost model (statistics catalog) drove
	// this compilation; false means the purely structural heuristics
	// planned it.
	CostBased bool `json:"cost_based"`
	// Decomposition renders the chosen bag decomposition of "ghd" plans
	// (hypergraph.Decomposition.String); empty for other kinds.
	Decomposition string `json:"decomposition,omitempty"`
	// EstOutput is the cost model's output-cardinality estimate; 0 when
	// the plan is not cost-based.
	EstOutput float64 `json:"est_output,omitempty"`
	// EstBagSizes are the cost model's per-bag materialisation estimates
	// for shapes that expose them (triangle, ghd), aligned with the
	// flattened actual bag sizes of any built ranking.
	EstBagSizes []float64 `json:"est_bag_sizes,omitempty"`
	// EstimatorError is the estimator's worst per-bag error factor,
	// max(est+1, actual+1)/min(est+1, actual+1) over the compared sizes:
	// per materialised bag once some ranking has been built for cyclic
	// plans, est-vs-exact output for acyclic ones. 0 until actuals are
	// known (or when the plan is not cost-based).
	EstimatorError float64 `json:"estimator_error,omitempty"`
	// NeedsRecost flags a plan whose EstimatorError exceeds
	// RecostThreshold — the statistics that planned it misjudged the
	// data badly enough that recompiling against fresh statistics is
	// warranted. The serving registry surfaces it per cached plan.
	NeedsRecost bool `json:"needs_recost,omitempty"`
	// AGMBound is the worst-case output bound the uniform answer
	// sampler draws against (sample.Sampler.Bound); set once a Sample
	// call has built the sampler for the current epoch.
	AGMBound float64 `json:"agm_bound,omitempty"`
	// SampleTrials/SampleAccepts are the sampler's cumulative rejection
	// walk counters across every Sample call on the current epoch.
	SampleTrials  int64 `json:"sample_trials,omitempty"`
	SampleAccepts int64 `json:"sample_accepts,omitempty"`
	// EstCardinality is the unbiased estimate of the number of distinct
	// answers implied by those counters: acceptance rate × AGMBound.
	EstCardinality float64 `json:"est_cardinality,omitempty"`

	// DeltasApplied counts the ApplyDelta batches that advanced the
	// epoch; DeltaAppendedRows/DeltaDeletedRows sum the rows they
	// touched across the handle's lifetime.
	DeltasApplied     int64 `json:"deltas_applied,omitempty"`
	DeltaAppendedRows int64 `json:"delta_appended_rows,omitempty"`
	DeltaDeletedRows  int64 `json:"delta_deleted_rows,omitempty"`
	// DeltaBagsReused/DeltaBagsRebuilt count decomposition bags carried
	// over vs re-materialised across all deltas (cyclic kinds);
	// DeltaNodesReused/DeltaNodesRecomputed count join-tree nodes whose
	// π pass was skipped vs rerun (acyclic plans and GHD bag trees).
	DeltaBagsReused      int64 `json:"delta_bags_reused,omitempty"`
	DeltaBagsRebuilt     int64 `json:"delta_bags_rebuilt,omitempty"`
	DeltaNodesReused     int64 `json:"delta_nodes_reused,omitempty"`
	DeltaNodesRecomputed int64 `json:"delta_nodes_recomputed,omitempty"`
	// LastDeltaNs is the wall time of the most recent ApplyDelta.
	LastDeltaNs int64 `json:"last_delta_ns,omitempty"`
}

// RecostThreshold is the EstimatorError factor above which PlanStats
// sets NeedsRecost. A variable, not a constant, so operators (and
// tests) can tune how tolerant the flag is.
var RecostThreshold = 8.0

// estRatio is the symmetric error factor between an estimate and an
// actual count, add-one smoothed so empty bags compare cleanly.
func estRatio(est, actual float64) float64 {
	a, b := est+1, actual+1
	if a < b {
		return b / a
	}
	return a / b
}

// RankingStats describes the cached physical artefacts of one ranking
// function on a Prepared handle.
type RankingStats struct {
	// Ranking is the aggregate's Name().
	Ranking string `json:"ranking"`
	// BagSizes reports the materialised bag sizes of cyclic plans (one
	// inner slice per tree, one entry per bag); nil for acyclic handles.
	BagSizes [][]int `json:"bag_sizes,omitempty"`
	// TotalMaterialized sums all bag sizes; 0 for acyclic handles.
	TotalMaterialized int `json:"total_materialized,omitempty"`
}

// PlanStats snapshots the handle without triggering or waiting on any
// build: rankings mid-build are simply not listed yet. Safe to call
// concurrently with Runs and ApplyDelta.
func (p *Prepared) PlanStats() PlanStats {
	s := p.state.Load()
	st := PlanStats{
		Fingerprint: p.fp,
		OutAttrs:    p.outAttrs,
		Epoch:       s.epoch,
		EstTuples:   s.estTuples,
		Solutions:   s.solutions,
	}
	// actualBags flattens one built ranking's materialised bag sizes.
	// Bag contents (and so sizes) are identical across rankings — only
	// the weights differ — so any built entry serves as the actuals the
	// estimates are compared against.
	var actualBags []int
	switch p.kind {
	case kindAcyclic:
		st.Kind = "acyclic"
		for agg := range s.tdps.built() {
			st.Rankings = append(st.Rankings, RankingStats{Ranking: agg.Name()})
		}
	case kindTriangle, kindFourCycle, kindLongCycle, kindGeneric:
		switch p.kind {
		case kindTriangle:
			st.Kind = "triangle"
		case kindFourCycle:
			st.Kind = "four-cycle"
		case kindLongCycle:
			st.Kind = "cycle"
		default:
			st.Kind = "ghd"
			st.Decomposition = p.ghdDec.String()
		}
		for agg, d := range s.decomps.built() {
			st.Rankings = append(st.Rankings, RankingStats{
				Ranking:           agg.Name(),
				BagSizes:          d.Stats.BagSizes,
				TotalMaterialized: d.Stats.TotalMaterialized,
			})
			if actualBags == nil {
				for _, tree := range d.Stats.BagSizes {
					actualBags = append(actualBags, tree...)
				}
			}
		}
	}
	sort.Slice(st.Rankings, func(i, j int) bool { return st.Rankings[i].Ranking < st.Rankings[j].Ranking })
	st.CostBased = p.costBased
	if p.costBased {
		st.EstOutput = p.estOutput
		st.EstBagSizes = p.estBags
		switch {
		case p.kind == kindAcyclic:
			st.EstimatorError = estRatio(p.estOutput, float64(s.solutions))
		case len(p.estBags) > 0 && len(actualBags) == len(p.estBags):
			for i, a := range actualBags {
				if r := estRatio(p.estBags[i], float64(a)); r > st.EstimatorError {
					st.EstimatorError = r
				}
			}
		}
		st.NeedsRecost = st.EstimatorError > RecostThreshold
	}
	s.samplerMu.Lock()
	if s.samplerSet && s.sampler != nil {
		st.AGMBound = s.sampler.Bound()
		st.EstCardinality, st.SampleTrials, st.SampleAccepts = s.sampler.Estimate()
	}
	s.samplerMu.Unlock()
	st.DeltasApplied = p.deltasApplied.Load()
	st.DeltaAppendedRows = p.deltaAppendedRows.Load()
	st.DeltaDeletedRows = p.deltaDeletedRows.Load()
	st.DeltaBagsReused = p.deltaBagsReused.Load()
	st.DeltaBagsRebuilt = p.deltaBagsRebuilt.Load()
	st.DeltaNodesReused = p.deltaNodesReused.Load()
	st.DeltaNodesRecomputed = p.deltaNodesRecomputed.Load()
	st.LastDeltaNs = p.lastDeltaNs.Load()
	return st
}

// runConfig collects the per-execution options of one Run (and, for the
// compile-only options, one Compile).
type runConfig struct {
	agg        ranking.Aggregate
	variant    Variant
	k          int
	ctx        context.Context
	workers    int
	workersSet bool
	cat        *catalog.Catalog
	catSet     bool
	cm         *catalog.CostModel
	seed       uint64
	seedSet    bool
}

// CompileOption configures one Compile (or Query.Prepare) call. Every
// RunOption is also a CompileOption — Compile consults WithParallelism
// and WithContext and ignores the rest — while the compile-only options
// (WithStatistics, WithCostModel) are *not* RunOptions: passing them to
// Run is a compile-time error rather than a silent no-op.
type CompileOption interface {
	applyCompile(*runConfig)
}

// RunOption configures one execution of a Prepared query. The defaults
// are WithRanking(SumCost), WithVariant(Lazy), no k limit, and
// context.Background(). Every RunOption may also be passed to Compile
// (it implements CompileOption).
type RunOption func(*runConfig)

// applyCompile lets every RunOption double as a CompileOption.
func (o RunOption) applyCompile(c *runConfig) { o(c) }

// compileOption is the concrete type of the compile-only options.
type compileOption func(*runConfig)

func (o compileOption) applyCompile(c *runConfig) { o(c) }

// WithRanking selects the ranking function for this run. The first run
// with each ranking function pays one linear pass (and, for cyclic
// shapes, the bag materialisation); later runs reuse it.
func WithRanking(agg ranking.Aggregate) RunOption { return func(c *runConfig) { c.agg = agg } }

// WithVariant selects the any-k algorithm variant for this run.
// Triangle queries enumerate a single sorted bag and ignore it.
func WithVariant(v Variant) RunOption { return func(c *runConfig) { c.variant = v } }

// WithK limits the run to the k best results (k <= 0 means no limit).
// Enumeration is lazy either way; the limit only caps Next.
func WithK(k int) RunOption { return func(c *runConfig) { c.k = k } }

// WithContext attaches a cancellation context to the run: once ctx is
// done, the iterator's Next returns false and Err reports ctx.Err().
// The context also covers the prepare work a first Run with a new
// ranking function triggers (T-DP instantiation for acyclic queries,
// bag materialisation for cyclic shapes): cancellation there fails the
// Run with ctx.Err(), and a later Run simply rebuilds — a canceled
// prepare is never cached.
func WithContext(ctx context.Context) RunOption { return func(c *runConfig) { c.ctx = ctx } }

// WithParallelism sets how many workers run the prepare phase (the
// first Run with each ranking function). For acyclic queries that is
// the plan build and the T-DP instantiation: join-tree nodes process
// level-synchronized, bottom-up, fanning the per-node π/grouping work
// out across each depth level. For cyclic queries it is bag
// materialisation: independent bags build concurrently, and leftover
// workers partition the first join variable inside each Generic-Join
// bag. n <= 0 selects GOMAXPROCS; n == 1 forces the sequential path.
//
// When the option is omitted entirely, parallelism is on by default:
// builds over inputs of at least a few thousand tuples (the measured
// break-even; see docs/ARCHITECTURE.md) use GOMAXPROCS workers, smaller
// ones stay sequential to skip the scheduling overhead.
//
// Parallel preparation is bit-identical to sequential preparation —
// same π weights, bag contents and order, same Stats — so the only
// observable difference is latency. Passed to Compile it sets the
// handle's default (and drives the acyclic plan build itself); passed
// to Run it overrides the default for the build that run triggers.
// Enumeration itself is unaffected.
func WithParallelism(n int) RunOption {
	return func(c *runConfig) {
		c.workers = parallel.Degree(n)
		c.workersSet = true
	}
}

// WithStatistics supplies the statistics catalog cost-based planning
// reads at Compile time. Atoms the catalog has no entry for (or whose
// entry's arity does not match) fall back to statistics collected
// directly from the query's relations. When the option is omitted
// entirely, cost-based planning is still on by default — Compile
// collects statistics from the relations on the spot. Passing a nil
// catalog disables cost-based planning altogether, reproducing the
// purely structural plans (min-degree/min-fill decomposition search,
// wcoj.SuggestOrder variable orders) bit for bit. A compile-only
// option: the type system rejects it on Run.
func WithStatistics(c *catalog.Catalog) CompileOption {
	return compileOption(func(cfg *runConfig) {
		cfg.cat = c
		cfg.catSet = true
	})
}

// WithCostModel supplies a pre-built cost model, overriding both
// WithStatistics and the default statistics collection. A compile-only
// option: the type system rejects it on Run.
func WithCostModel(m *catalog.CostModel) CompileOption {
	return compileOption(func(cfg *runConfig) { cfg.cm = m })
}

// WithSeed fixes the RNG seed of a Sample call, making its draws
// reproducible (equal seeds on equal handles draw equal answers). When
// omitted, each Sample call takes the next seed from a process-wide
// sequence, so repeated calls explore different draws. Ignored by
// Run/TopK/Count — ranked enumeration is deterministic already.
func WithSeed(seed uint64) RunOption {
	return func(cfg *runConfig) {
		cfg.seed = seed
		cfg.seedSet = true
	}
}

// Run executes the compiled plan and returns a ranked iterator. Always
// Close the iterator (idempotent) and check Err after Next reports
// false. Concurrent Runs on one handle are safe and share the cached
// per-ranking plan. A Run concurrent with ApplyDelta enumerates either
// entirely the old or entirely the new epoch.
func (p *Prepared) Run(opts ...RunOption) (Iterator, error) {
	//anykvet:allow ctxplumb -- documented option default; callers attach cancellation via WithContext
	cfg := runConfig{agg: SumCost, variant: Lazy, ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	st := p.state.Load()
	// The prepare span covers the first-run physical build (instantiate
	// or bag materialisation); on a cache hit it records ~0 duration,
	// which is itself the signal a dashboard wants. Without a trace on
	// cfg.ctx every span call here is a no-op.
	pctx, prepSpan := obs.StartSpan(cfg.ctx, "prepare")
	var it Iterator
	if p.kind == kindAcyclic {
		t, err := p.tdpFor(st, cfg.agg, pctx, p.prepareWorkers(cfg, st.estTuples))
		prepSpan.End()
		if err != nil {
			return nil, err
		}
		it, err = core.New(cfg.ctx, t, cfg.variant)
		if err != nil {
			return nil, err
		}
	} else {
		d, err := p.decompFor(st, cfg.agg, pctx, p.prepareWorkers(cfg, st.estTuples))
		prepSpan.End()
		if err != nil {
			return nil, err
		}
		it, err = d.Run(cfg.ctx, cfg.variant)
		if err != nil {
			return nil, err
		}
	}
	if cfg.k > 0 {
		it = core.Limit(it, cfg.k)
	}
	if _, enumSpan := obs.StartSpan(cfg.ctx, "enumerate"); enumSpan != nil {
		enumSpan.SetAttr("ranking", cfg.agg.Name())
		it = &traceIter{it: it, span: enumSpan, k: cfg.k}
	}
	return it, nil
}

// traceIter instruments an iterator with the "enumerate" span of a
// traced run: point events mark the first and the k'th result, and the
// span ends when enumeration is exhausted or the iterator is closed —
// whichever comes first (Span.End is idempotent and safe against the
// serving layer's watchdog Close racing a consumer's Next).
type traceIter struct {
	it    Iterator
	span  *obs.Span
	k     int
	count int
}

func (t *traceIter) Next() (Result, bool) {
	r, ok := t.it.Next()
	if ok {
		t.count++
		if t.count == 1 {
			t.span.Event("first-result")
		}
		if t.k > 0 && t.count == t.k {
			t.span.Event("kth-result")
		}
	} else {
		t.span.End()
	}
	return r, ok
}

func (t *traceIter) Err() error { return t.it.Err() }

func (t *traceIter) Close() error {
	err := t.it.Close()
	t.span.End()
	return err
}

// TopK runs the plan and collects the k best results (k <= 0 collects
// everything). The iterator is closed before returning; a cancellation
// error is returned alongside the results collected so far.
func (p *Prepared) TopK(k int, opts ...RunOption) ([]Result, error) {
	it, err := p.Run(append(append([]RunOption(nil), opts...), WithK(k))...)
	if err != nil {
		return nil, err
	}
	out := core.Collect(it, k)
	err = it.Err()
	it.Close()
	return out, err
}

// Count returns the number of join results without materialising them.
// Acyclic queries use the counting pass over the compiled (already
// reduced) plan; cyclic shapes drain a ranked iterator (honoring
// WithContext). Any WithK option is ignored — Count always reports the
// full cardinality.
func (p *Prepared) Count(opts ...RunOption) (int, error) {
	if p.kind == kindAcyclic {
		return p.state.Load().solutions, nil
	}
	it, err := p.Run(append(append([]RunOption(nil), opts...), WithK(0))...)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n, it.Err()
		}
		n++
	}
}

// IsEmpty answers the Boolean query "does the join have any result?"
// with early termination.
func (p *Prepared) IsEmpty(opts ...RunOption) (bool, error) {
	if p.kind == kindAcyclic {
		return p.state.Load().plan.Empty(), nil
	}
	it, err := p.Run(opts...)
	if err != nil {
		return false, err
	}
	defer it.Close()
	_, ok := it.Next()
	if err := it.Err(); err != nil {
		return false, err
	}
	return !ok, nil
}

// tdpFor returns (instantiating and caching on first use) the T-DP of
// the epoch's acyclic plan under agg. The ctx and worker count only
// matter to the Run that triggers the build; cache hits ignore them.
// Instantiate is cancelable between node tasks, and a canceled
// instantiation fails with ctx.Err() and is dropped from the cache (the
// onceCache retry-on-cancel policy), so one run's cancellation never
// poisons the per-aggregate entry — the next Run rebuilds. Parallel
// instantiations are bit-identical to sequential ones, so the cached
// TDP does not depend on which Run won the build.
func (p *Prepared) tdpFor(st *planState, agg ranking.Aggregate, ctx context.Context, workers int) (*dp.TDP, error) {
	return st.tdps.get(ctx, agg, func(a ranking.Aggregate) (*dp.TDP, error) {
		return st.plan.Instantiate(a, dp.WithContext(ctx), dp.WithWorkers(workers))
	})
}

// decompFor returns (building and caching on first use) the epoch's
// cyclic decomposition plan under agg: a Generic-Join bag for the
// triangle, the submodular-width union of three trees for the 4-cycle,
// the fhtw-2 fan plan for longer cycles, and the GHD bag tree for every
// other cyclic shape. The ctx and worker count only matter to the Run
// that triggers the build; cache hits ignore them. Parallel builds are
// bit-identical to sequential ones, so the cached plan does not depend
// on which Run won the build.
func (p *Prepared) decompFor(st *planState, agg ranking.Aggregate, ctx context.Context, workers int) (*decomp.Plan, error) {
	return st.decomps.get(ctx, agg, func(a ranking.Aggregate) (*decomp.Plan, error) {
		return p.buildDecomp(st, a, ctx, workers)
	})
}

// decompOpts assembles the PrepareOptions every decomposition build of
// this handle uses (cold and delta alike).
func (p *Prepared) decompOpts(ctx context.Context, workers int) []decomp.PrepareOption {
	opts := []decomp.PrepareOption{decomp.WithWorkers(workers), decomp.WithContext(ctx)}
	if p.hints != nil {
		// Catalog heavy hitters guide the intra-bag heavy/light split;
		// every shape benefits, and results stay bit-identical.
		opts = append(opts, decomp.WithSkewHints(p.hints))
	}
	if p.costBased && p.kind == kindGeneric {
		// Cost-based compilations also pick each GHD bag's Generic-Join
		// variable order from statistics over the bag's actual atoms.
		// Only the generic planner takes the chooser: the canonical
		// triangle/4-cycle/fan plans hardwire orders their tests and
		// golden files pin.
		opts = append(opts, decomp.WithOrderChooser(catalog.ChooseOrder))
	}
	return opts
}

func (p *Prepared) buildDecomp(st *planState, agg ranking.Aggregate, ctx context.Context, workers int) (*decomp.Plan, error) {
	opts := p.decompOpts(ctx, workers)
	switch p.kind {
	case kindTriangle:
		var three [3]*relation.Relation
		copy(three[:], st.cycleRels)
		return decomp.PrepareTriangle(three, agg, opts...)
	case kindFourCycle:
		var four [4]*relation.Relation
		copy(four[:], st.cycleRels)
		return decomp.PrepareFourCycleSubmodular(four, agg, opts...)
	case kindGeneric:
		return decomp.PrepareGHDWith(p.ghdDec, p.srcEdges, st.srcRels, agg, opts...)
	default:
		return decomp.PrepareCycleSingleTree(st.cycleRels, agg, opts...)
	}
}

// ErrTrialBudget reports that Sample's rejection walk ran out of trials
// before drawing the requested number of samples — expected when the
// join is empty or its answer count sits far below its AGM bound. The
// samples drawn so far are still returned, and they are still uniform.
var ErrTrialBudget = sample.ErrTrialBudget

// sampleSeq feeds default seeds to Sample calls that pass no WithSeed.
var sampleSeq atomic.Uint64

// samplerFor returns the epoch's uniform answer sampler, building and
// caching it on first use: the query atoms are sorted into fresh tries
// and the AGM-optimal fractional edge cover (hypergraph.AGMCover)
// supplies the walk's per-prefix bounds. The build is independent of
// ranking functions and plan shape — it walks the original atoms — and
// costs one sort per atom, never a bag materialisation. Each epoch
// builds its own sampler over its own relations, so fixed-seed draws
// after a delta equal those of a cold handle on the same data.
func (p *Prepared) samplerFor(st *planState) (*sample.Sampler, []int, error) {
	st.samplerMu.Lock()
	defer st.samplerMu.Unlock()
	if st.samplerSet {
		return st.sampler, st.samplePerm, st.samplerErr
	}
	build := func() (*sample.Sampler, []int, error) {
		h := hypergraph.New(p.srcEdges...)
		atoms := make([]wcoj.Atom, len(p.srcEdges))
		sizes := make([]float64, len(p.srcEdges))
		for i, e := range p.srcEdges {
			atoms[i] = wcoj.Atom{Rel: st.srcRels[i], Vars: e.Vars}
			// Clamp empties to 1: the cover LP needs positive sizes, and
			// the sampler itself reports an empty relation as bound 0.
			sizes[i] = math.Max(1, float64(st.srcRels[i].Len()))
		}
		lambda, _, err := h.AGMCover(sizes)
		if err != nil {
			return nil, nil, err
		}
		s, err := sample.New(atoms, wcoj.SuggestOrder(atoms), lambda)
		if err != nil {
			return nil, nil, err
		}
		pos := make(map[string]int, len(s.Vars()))
		for i, v := range s.Vars() {
			pos[v] = i
		}
		perm := make([]int, len(p.outAttrs))
		for i, a := range p.outAttrs {
			j, ok := pos[a]
			if !ok {
				return nil, nil, fmt.Errorf("repro: output attribute %s missing from sampler order", a)
			}
			perm[i] = j
		}
		return s, perm, nil
	}
	st.sampler, st.samplePerm, st.samplerErr = build()
	st.samplerSet = true
	return st.sampler, st.samplePerm, st.samplerErr
}

// Sample draws up to n uniform random samples from the query's answer
// set without enumerating it (internal/sample's AGM rejection walk over
// the original atoms). Sampling is uniform over distinct variable
// assignments; each comes back as a Result in OutAttrs order whose
// weight aggregates one uniformly chosen witness row per atom under the
// run's ranking function — samples are not ranked. Honors WithContext,
// WithRanking and WithSeed; every call also advances the handle's
// cumulative cardinality estimate (PlanStats.EstCardinality). A join
// whose answer count is far below its AGM bound can exhaust the trial
// budget first: the samples drawn so far return with
// sample.ErrTrialBudget, and an empty join yields zero samples.
func (p *Prepared) Sample(n int, opts ...RunOption) ([]Result, error) {
	//anykvet:allow ctxplumb -- documented option default; callers attach cancellation via WithContext
	cfg := runConfig{agg: SumCost, ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	st := p.state.Load()
	s, perm, err := p.samplerFor(st)
	if err != nil {
		return nil, err
	}
	seed := cfg.seed
	if !cfg.seedSet {
		seed = sampleSeq.Add(1)
	}
	sctx, sampleSpan := obs.StartSpan(cfg.ctx, "sample")
	ans, err := s.Sample(sctx, n, seed, cfg.agg)
	sampleSpan.End()
	out := make([]Result, len(ans))
	for i, a := range ans {
		t := make(relation.Tuple, len(perm))
		for j, sp := range perm {
			t[j] = a.Tuple[sp]
		}
		out[i] = Result{Tuple: t, Weight: a.Weight}
	}
	return out, err
}
