package repro

import (
	"regexp"
	"testing"
)

var hex64 = regexp.MustCompile(`^[0-9a-f]{64}$`)

func fpOf(t *testing.T, q *Query) string {
	t.Helper()
	fp, err := q.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !hex64.MatchString(fp) {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp)
	}
	return fp
}

func pathTuples() ([]Tuple, []float64) {
	return []Tuple{{1, 10}, {2, 20}}, []float64{1, 2}
}

func TestFingerprintInsertionOrderIndependent(t *testing.T) {
	ts, ws := pathTuples()
	a := NewQuery().
		Rel("R", []string{"A", "B"}, ts, ws).
		Rel("S", []string{"B", "C"}, ts, ws).
		Rel("T", []string{"C", "D"}, ts, ws)
	b := NewQuery().
		Rel("T", []string{"C", "D"}, ts, ws).
		Rel("R", []string{"A", "B"}, ts, ws).
		Rel("S", []string{"B", "C"}, ts, ws)
	if fpOf(t, a) != fpOf(t, b) {
		t.Fatal("fingerprint depends on relation insertion order")
	}
}

func TestFingerprintIndependentOfNamesAndData(t *testing.T) {
	ts, ws := pathTuples()
	a := NewQuery().
		Rel("R", []string{"A", "B"}, ts, ws).
		Rel("S", []string{"B", "C"}, ts, ws)
	b := NewQuery().
		Rel("Edges1", []string{"A", "B"}, []Tuple{{7, 8}, {9, 9}, {1, 2}}, nil).
		Rel("Edges2", []string{"B", "C"}, []Tuple{{8, 7}}, []float64{42})
	if fpOf(t, a) != fpOf(t, b) {
		t.Fatal("fingerprint should cover shape only, not relation names or data")
	}
}

func TestFingerprintSensitiveToVariablePattern(t *testing.T) {
	ts, ws := pathTuples()
	path := NewQuery().
		Rel("R", []string{"A", "B"}, ts, ws).
		Rel("S", []string{"B", "C"}, ts, ws)
	// Same arities, different sharing: a cartesian pair of edges.
	disjoint := NewQuery().
		Rel("R", []string{"A", "B"}, ts, ws).
		Rel("S", []string{"C", "D"}, ts, ws)
	if fpOf(t, path) == fpOf(t, disjoint) {
		t.Fatal("fingerprint insensitive to variable sharing")
	}
	// Renaming variables is a different pattern by contract.
	renamed := NewQuery().
		Rel("R", []string{"X", "Y"}, ts, ws).
		Rel("S", []string{"Y", "Z"}, ts, ws)
	if fpOf(t, path) == fpOf(t, renamed) {
		t.Fatal("fingerprint should include variable names")
	}
}

func TestFingerprintSensitiveToArityAndMultiplicity(t *testing.T) {
	binary := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, nil).
		Rel("S", []string{"B", "C"}, []Tuple{{2, 3}}, nil)
	ternary := NewQuery().
		Rel("R", []string{"A", "B", "C"}, []Tuple{{1, 2, 3}}, nil).
		Rel("S", []string{"B", "C"}, []Tuple{{2, 3}}, nil)
	if fpOf(t, binary) == fpOf(t, ternary) {
		t.Fatal("fingerprint insensitive to arity")
	}
	// A duplicated atom pattern (self-join) must not collapse into one.
	single := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, nil)
	double := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, nil).
		Rel("R2", []string{"A", "B"}, []Tuple{{1, 2}}, nil)
	if fpOf(t, single) == fpOf(t, double) {
		t.Fatal("fingerprint insensitive to atom multiplicity")
	}
}

func TestFingerprintErrors(t *testing.T) {
	if _, err := NewQuery().Fingerprint(); err == nil {
		t.Fatal("empty query should not fingerprint")
	}
	bad := NewQuery().Rel("R", []string{"A"}, []Tuple{{1, 2}}, nil)
	if _, err := bad.Fingerprint(); err == nil {
		t.Fatal("invalid query should surface its builder error")
	}
}

func TestPreparedFingerprintMatchesQuery(t *testing.T) {
	ts, ws := pathTuples()
	q := NewQuery().
		Rel("R", []string{"A", "B"}, ts, ws).
		Rel("S", []string{"B", "C"}, ts, ws)
	want := fpOf(t, q)
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Fingerprint(); got != want {
		t.Fatalf("Prepared.Fingerprint = %s, want %s", got, want)
	}
}

// TestCycleOutAttrsUseUserVariables: cycle-shaped queries must report
// the user's variable names in walk order, not the engine's canonical
// A,B,C placeholders, and the streamed tuples must align with them.
func TestCycleOutAttrsUseUserVariables(t *testing.T) {
	e := []Tuple{{1, 2}, {2, 3}, {3, 1}}
	tri := NewQuery().
		Rel("E1", []string{"X", "Y"}, e, nil).
		Rel("E2", []string{"Y", "Z"}, e, nil).
		Rel("E3", []string{"Z", "X"}, e, nil)
	attrs, err := tri.OutAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 || attrs[0] != "X" || attrs[1] != "Y" || attrs[2] != "Z" {
		t.Fatalf("triangle OutAttrs = %v, want [X Y Z]", attrs)
	}
	p, err := Compile(tri)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.OutAttrs(); got[0] != "X" || got[1] != "Y" || got[2] != "Z" {
		t.Fatalf("Prepared.OutAttrs = %v, want [X Y Z]", got)
	}
	// The data holds the single directed triangle 1→2→3→1, so under the
	// (X,Y,Z) schema every solution must satisfy the edges X→Y, Y→Z,
	// Z→X — i.e. be a rotation of (1,2,3).
	rs, err := p.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("triangle solutions = %v, want the 3 rotations", rs)
	}
	for _, r := range rs {
		x, y, z := r.Tuple[0], r.Tuple[1], r.Tuple[2]
		if (y-x+3)%3 != 1 || (z-y+3)%3 != 1 {
			t.Fatalf("tuple %v does not follow the X→Y→Z→X walk", r.Tuple)
		}
	}
}

func TestPlanStatsReportsBuiltRankings(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 10}, {2, 20}}, []float64{1, 2}).
		Rel("S", []string{"B", "C"}, []Tuple{{10, 5}, {20, 6}}, []float64{3, 4})
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := p.PlanStats()
	if st.Kind != "acyclic" || st.Fingerprint != p.Fingerprint() {
		t.Fatalf("unexpected PlanStats header: %+v", st)
	}
	if st.Solutions != 2 {
		t.Fatalf("Solutions = %d, want 2", st.Solutions)
	}
	if len(st.Rankings) != 0 {
		t.Fatalf("no run yet, but Rankings = %+v", st.Rankings)
	}
	if _, err := p.TopK(1, WithRanking(SumCost)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TopK(1, WithRanking(MaxCost)); err != nil {
		t.Fatal(err)
	}
	st = p.PlanStats()
	if len(st.Rankings) != 2 || st.Rankings[0].Ranking != "max" || st.Rankings[1].Ranking != "sum" {
		t.Fatalf("Rankings = %+v, want [max sum]", st.Rankings)
	}

	// Cyclic: the triangle's bag sizes appear once its plan is built.
	tri := NewQuery().
		Rel("E1", []string{"A", "B"}, []Tuple{{1, 2}}, nil).
		Rel("E2", []string{"B", "C"}, []Tuple{{2, 3}}, nil).
		Rel("E3", []string{"C", "A"}, []Tuple{{3, 1}}, nil)
	tp, err := Compile(tri)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.TopK(1); err != nil {
		t.Fatal(err)
	}
	st = tp.PlanStats()
	if st.Kind != "triangle" || st.Solutions != -1 {
		t.Fatalf("unexpected triangle PlanStats: %+v", st)
	}
	if len(st.Rankings) != 1 || st.Rankings[0].TotalMaterialized != 1 {
		t.Fatalf("triangle Rankings = %+v, want one bag with 1 tuple", st.Rankings)
	}
}
