package repro

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestFacadeAcyclicPath(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 10}, {1, 11}, {2, 10}}, []float64{1, 5, 2}).
		Rel("S", []string{"B", "C"}, []Tuple{{10, 100}, {10, 101}, {11, 100}}, []float64{10, 1, 0})
	got, err := q.TopK(SumCost, Lazy, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 5}
	if len(got) != 3 {
		t.Fatalf("TopK returned %d results", len(got))
	}
	for i, r := range got {
		if r.Weight != want[i] {
			t.Errorf("rank %d weight = %g, want %g", i, r.Weight, want[i])
		}
	}
}

func TestFacadeOutAttrs(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, nil).
		Rel("S", []string{"B", "C"}, []Tuple{{2, 3}}, nil)
	attrs, err := q.OutAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 {
		t.Fatalf("OutAttrs = %v", attrs)
	}
}

func TestFacadeTriangle(t *testing.T) {
	// Cyclic triangle: auto-decomposed. Edges 1→2→3→1 with weights.
	edges := []Tuple{{1, 2}, {2, 3}, {3, 1}, {1, 3}}
	ws := []float64{0.1, 0.2, 0.3, 9}
	q := NewQuery().
		Rel("E1", []string{"A", "B"}, edges, ws).
		Rel("E2", []string{"B", "C"}, edges, ws).
		Rel("E3", []string{"C", "A"}, edges, ws)
	got, err := q.TopK(SumCost, Lazy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("want one triangle, got %d", len(got))
	}
	if math.Abs(got[0].Weight-0.6) > 1e-9 {
		t.Errorf("lightest triangle weight = %g, want 0.6", got[0].Weight)
	}
}

func TestFacadeFourCycle(t *testing.T) {
	g := workload.RandomGraph(10, 60, workload.UniformWeights(), 4)
	var tuples []Tuple
	var ws []float64
	for i, tp := range g.Edges.Tuples {
		tuples = append(tuples, tp)
		ws = append(ws, g.Edges.Weights[i])
	}
	q := NewQuery().
		Rel("E1", []string{"A", "B"}, tuples, ws).
		Rel("E2", []string{"B", "C"}, tuples, ws).
		Rel("E3", []string{"C", "D"}, tuples, ws).
		Rel("E4", []string{"D", "A"}, tuples, ws)
	it, err := q.Ranked(SumCost, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	count := 0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.Weight < prev-1e-12 {
			t.Fatal("results not in ranking order")
		}
		prev = r.Weight
		count++
	}
	if count == 0 {
		t.Skip("random instance had no 4-cycles")
	}
}

func TestFacadeCycleDetectionPermuted(t *testing.T) {
	// The same 4-cycle declared in shuffled atom order must still match.
	e := []Tuple{{1, 2}, {2, 1}}
	q := NewQuery().
		Rel("E3", []string{"C", "D"}, e, nil).
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E4", []string{"D", "A"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil)
	if _, err := q.Ranked(SumCost, Lazy); err != nil {
		t.Fatalf("permuted 4-cycle not recognised: %v", err)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := NewQuery().Ranked(SumCost, Lazy); err == nil {
		t.Error("empty query should fail")
	}
	q := NewQuery().Rel("R", []string{"A", "B"}, []Tuple{{1}}, nil)
	if _, err := q.Ranked(SumCost, Lazy); err == nil {
		t.Error("arity mismatch should fail")
	}
	q2 := NewQuery().Rel("R", []string{"A"}, []Tuple{{1}}, []float64{})
	if _, err := q2.Ranked(SumCost, Lazy); err == nil {
		t.Error("weight length mismatch should fail")
	}
	// Builder validation: duplicate relation names and repeated
	// variables within one atom are rejected with guidance.
	dup := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, nil).
		Rel("R", []string{"B", "C"}, []Tuple{{2, 3}}, nil)
	if _, err := dup.Ranked(SumCost, Lazy); err == nil {
		t.Error("duplicate relation name should fail")
	}
	rep := NewQuery().Rel("R", []string{"A", "A"}, []Tuple{{1, 1}}, nil)
	if _, err := rep.Ranked(SumCost, Lazy); err == nil {
		t.Error("repeated variable within one atom should fail")
	}
}

func TestFacadeFiveCycle(t *testing.T) {
	// 5-cycles are handled by the generic fhtw-2 fan decomposition.
	// Build a graph with exactly one directed 5-cycle 1→2→3→4→5→1.
	e := []Tuple{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}, {2, 9}, {9, 4}}
	w := []float64{1, 2, 3, 4, 5, 100, 100}
	q := NewQuery().
		Rel("E1", []string{"A", "B"}, e, w).
		Rel("E2", []string{"B", "C"}, e, w).
		Rel("E3", []string{"C", "D"}, e, w).
		Rel("E4", []string{"D", "E"}, e, w).
		Rel("E5", []string{"E", "A"}, e, w)
	got, err := q.TopK(SumCost, Lazy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("expected the 5-cycle, got %d results", len(got))
	}
	if got[0].Weight != 15 { // 1+2+3+4+5
		t.Errorf("weight = %g, want 15", got[0].Weight)
	}
}

func TestFacadeAllVariantsAgree(t *testing.T) {
	inst := workload.Path(3, 50, 6, workload.UniformWeights(), 2)
	build := func() *Query {
		q := NewQuery()
		for i, r := range inst.Rels {
			q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
		}
		return q
	}
	var ref []Result
	for _, v := range []Variant{Eager, Lazy, Quick, All, Take2, Rec, Batch} {
		got, err := build().TopK(SumCost, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d results, ref %d", v, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
				t.Fatalf("%s: weight mismatch at %d", v, i)
			}
		}
	}
}

func TestFacadeCount(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 10}, {1, 11}, {2, 10}}, nil).
		Rel("S", []string{"B", "C"}, []Tuple{{10, 100}, {10, 101}, {11, 100}}, nil)
	n, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Count = %d, want 5", n)
	}
	empty, err := q.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Error("query has results")
	}
}

func TestFacadeCountCyclic(t *testing.T) {
	// Triangle 1→2→3→1: 3 rotations.
	e := []Tuple{{1, 2}, {2, 3}, {3, 1}}
	q := NewQuery().
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil).
		Rel("E3", []string{"C", "A"}, e, nil)
	n, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("triangle Count = %d, want 3 rotations", n)
	}
}

func TestFacadeIsEmptyTrue(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, nil).
		Rel("S", []string{"B", "C"}, []Tuple{{9, 9}}, nil)
	empty, err := q.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Error("disconnected join should be empty")
	}
}

func TestFacadeOutAttrsCyclic(t *testing.T) {
	e := []Tuple{{1, 2}}
	tri := NewQuery().
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil).
		Rel("E3", []string{"C", "A"}, e, nil)
	attrs, err := tri.OutAttrs()
	if err != nil || len(attrs) != 3 {
		t.Fatalf("triangle OutAttrs = %v, %v", attrs, err)
	}
	c5 := NewQuery().
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil).
		Rel("E3", []string{"C", "D"}, e, nil).
		Rel("E4", []string{"D", "E"}, e, nil).
		Rel("E5", []string{"E", "A"}, e, nil)
	attrs, err = c5.OutAttrs()
	if err != nil || len(attrs) != 5 {
		t.Fatalf("C5 OutAttrs = %v, %v", attrs, err)
	}
	// Non-cycle cyclic shapes go through the GHD planner and report the
	// query variables in sorted order.
	fused := NewQuery().
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil).
		Rel("E3", []string{"C", "A"}, e, nil).
		Rel("E4", []string{"B", "D"}, e, nil).
		Rel("E5", []string{"D", "C"}, e, nil)
	attrs, err = fused.OutAttrs()
	if err != nil {
		t.Fatalf("GHD shape OutAttrs: %v", err)
	}
	want := []string{"A", "B", "C", "D"}
	if len(attrs) != len(want) {
		t.Fatalf("GHD OutAttrs = %v, want %v", attrs, want)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Fatalf("GHD OutAttrs = %v, want %v", attrs, want)
		}
	}
}

func TestFacadeTopKPropagatesErrors(t *testing.T) {
	q := NewQuery().Rel("R", []string{"A", "B"}, []Tuple{{1}}, nil)
	if _, err := q.TopK(SumCost, Lazy, 1); err == nil {
		t.Error("TopK should propagate builder errors")
	}
	if _, err := q.Count(); err == nil {
		t.Error("Count should propagate builder errors")
	}
	if _, err := q.IsEmpty(); err == nil {
		t.Error("IsEmpty should propagate builder errors")
	}
	empty := NewQuery()
	if _, err := empty.Count(); err == nil {
		t.Error("Count on empty query should error")
	}
	if _, err := empty.IsEmpty(); err == nil {
		t.Error("IsEmpty on empty query should error")
	}
}

func TestFacadeFourCycleCount(t *testing.T) {
	// Square 1→2→3→4→1: exactly 4 rotations.
	e := []Tuple{{1, 2}, {2, 3}, {3, 4}, {4, 1}}
	q := NewQuery().
		Rel("E1", []string{"A", "B"}, e, nil).
		Rel("E2", []string{"B", "C"}, e, nil).
		Rel("E3", []string{"C", "D"}, e, nil).
		Rel("E4", []string{"D", "A"}, e, nil)
	n, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("4-cycle Count = %d, want 4 rotations", n)
	}
}

func TestFacadeRankingFunctionsExported(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 2}}, []float64{3}).
		Rel("S", []string{"B", "C"}, []Tuple{{2, 4}}, []float64{5})
	for _, agg := range []interface {
		Name() string
	}{SumCost, SumBenefit, MaxCost, MinBenefit, ProductCost} {
		_ = agg.Name()
	}
	got, err := q.TopK(MaxCost, Lazy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Weight != 5 {
		t.Errorf("max-cost weight = %g, want 5", got[0].Weight)
	}
	got, err = q.TopK(ProductCost, Lazy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Weight != 15 {
		t.Errorf("product weight = %g, want 15", got[0].Weight)
	}
}
