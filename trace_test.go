package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// collectNames flattens a span tree into name -> count.
func collectNames(spans []*obs.SpanJSON, into map[string]int) {
	for _, s := range spans {
		into[s.Name]++
		collectNames(s.Children, into)
	}
}

// findSpan returns the first span with the given name, depth-first.
func findSpan(spans []*obs.SpanJSON, name string) *obs.SpanJSON {
	for _, s := range spans {
		if s.Name == name {
			return s
		}
		if f := findSpan(s.Children, name); f != nil {
			return f
		}
	}
	return nil
}

func TestTraceSpansAcyclic(t *testing.T) {
	ctx, tr := obs.NewTrace(context.Background(), obs.NewID(), time.Now())
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 10}, {1, 11}, {2, 10}}, []float64{1, 5, 2}).
		Rel("S", []string{"B", "C"}, []Tuple{{10, 100}, {10, 101}, {11, 100}}, []float64{10, 1, 0})
	p, err := Compile(q, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Run(WithContext(ctx), WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	tr.Finish(time.Now())

	j := tr.Snapshot()
	names := map[string]int{}
	collectNames(j.Spans, names)
	for _, want := range []string{"compile", "cost-model", "plan-build", "reduce", "group", "prepare", "instantiate", "enumerate"} {
		if names[want] == 0 {
			t.Errorf("missing span %q in acyclic trace (got %v)", want, names)
		}
	}
	if c := findSpan(j.Spans, "compile"); c == nil || c.Attrs["kind"] != "acyclic" {
		t.Errorf("compile span kind attr wrong: %+v", c)
	}
	enum := findSpan(j.Spans, "enumerate")
	if enum == nil {
		t.Fatal("no enumerate span")
	}
	var evs []string
	for _, e := range enum.Events {
		evs = append(evs, e.Name)
	}
	if len(evs) != 2 || evs[0] != "first-result" || evs[1] != "kth-result" {
		t.Errorf("enumerate events = %v, want [first-result kth-result]", evs)
	}
	// Phase durations nest within the trace wall time.
	for name := range names {
		s := findSpan(j.Spans, name)
		if s.StartNs < 0 || s.StartNs+s.DurationNs > j.DurationNs {
			t.Errorf("span %s [%d,+%d] exceeds trace duration %d", name, s.StartNs, s.DurationNs, j.DurationNs)
		}
	}
}

func TestTraceSpansCyclic(t *testing.T) {
	ctx, tr := obs.NewTrace(context.Background(), obs.NewID(), time.Now())
	// Triangle query: all pairs over a small clique.
	var e []Tuple
	var w []float64
	for a := int64(0); a < 4; a++ {
		for b := int64(0); b < 4; b++ {
			if a != b {
				e = append(e, Tuple{a, b})
				w = append(w, float64(a+b))
			}
		}
	}
	q := NewQuery().
		Rel("R", []string{"A", "B"}, e, w).
		Rel("S", []string{"B", "C"}, e, w).
		Rel("T", []string{"C", "A"}, e, w)
	p, err := Compile(q, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.TopK(3, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("topk returned %d results", len(res))
	}
	tr.Finish(time.Now())

	j := tr.Snapshot()
	names := map[string]int{}
	collectNames(j.Spans, names)
	for _, want := range []string{"compile", "cost-model", "prepare", "materialize", "generic-join", "enumerate"} {
		if names[want] == 0 {
			t.Errorf("missing span %q in cyclic trace (got %v)", want, names)
		}
	}
	if c := findSpan(j.Spans, "compile"); c == nil || c.Attrs["kind"] != "cycle" {
		t.Errorf("compile span kind attr wrong: %+v", c)
	}
	if m := findSpan(j.Spans, "materialize"); m.Attrs["bag"] == "" {
		t.Errorf("materialize span missing bag label: %+v", m)
	}
}

func TestTraceSpansDelta(t *testing.T) {
	ctx, tr := obs.NewTrace(context.Background(), obs.NewID(), time.Now())
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 10}, {2, 11}}, []float64{1, 2}).
		Rel("S", []string{"B", "C"}, []Tuple{{10, 100}, {11, 101}}, []float64{3, 4})
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	// Build the default ranking so the delta patches a warm artefact.
	if _, err := p.TopK(1); err != nil {
		t.Fatal(err)
	}
	err = p.ApplyDelta([]Delta{{Rel: "R", Append: []Tuple{{3, 10}}}}, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish(time.Now())

	j := tr.Snapshot()
	names := map[string]int{}
	collectNames(j.Spans, names)
	for _, want := range []string{"apply-delta", "plan-delta", "instantiate-delta"} {
		if names[want] == 0 {
			t.Errorf("missing span %q in delta trace (got %v)", want, names)
		}
	}
	ad := findSpan(j.Spans, "apply-delta")
	if ad.Attrs["epoch"] != "2" || ad.Attrs["appended"] != "1" {
		t.Errorf("apply-delta attrs wrong: %+v", ad.Attrs)
	}
	if len(ad.Events) != 1 || ad.Events[0].Name != "changed:R" {
		t.Errorf("apply-delta events = %+v", ad.Events)
	}
}

// TestRunNoTraceZeroAlloc pins the tentpole requirement that span
// plumbing costs nothing when no recorder is installed: a Run on a
// warm handle performs the same number of allocations as before the
// tracing layer existed (the iterator machinery itself allocates; the
// guard here is that the count is trace-independent).
func TestRunNoTraceZeroAlloc(t *testing.T) {
	q := NewQuery().
		Rel("R", []string{"A", "B"}, []Tuple{{1, 10}, {2, 11}}, []float64{1, 2}).
		Rel("S", []string{"B", "C"}, []Tuple{{10, 100}, {11, 101}}, []float64{3, 4})
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TopK(1); err != nil { // warm the plan
		t.Fatal(err)
	}
	run := func() {
		it, err := p.Run(WithK(1))
		if err != nil {
			t.Fatal(err)
		}
		it.Next()
		it.Close()
	}
	base := testing.AllocsPerRun(50, run)

	// The same run with a trace installed allocates more (spans are
	// recorded); without one it must not regress past the baseline.
	again := testing.AllocsPerRun(50, run)
	if again > base {
		t.Fatalf("untraced Run allocations grew: %v then %v", base, again)
	}
}
