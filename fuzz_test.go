package repro

// Fuzz targets for the boundary where untrusted input enters the
// engine: Query.Fingerprint consumes arbitrary client-chosen variable
// names (the serving layer keys its plan registry on the result), so
// its documented invariants — declaration-order independence,
// relation-name independence, and no panics on any input — are checked
// here against generator-driven query shapes. Run the smoke locally
// with
//
//	go test -fuzz FuzzQueryFingerprint -fuzztime 30s .
//
// (CI runs the same smoke on every push; see .github/workflows/ci.yml.)

import (
	"testing"
)

// fuzzQueryShapes decodes fuzz bytes into a bounded query shape: up to
// four atoms, one to three variables each, variable names taken raw
// from the input so empty names, separator characters, and non-UTF-8
// bytes all reach the canonicalisation.
func fuzzQueryShape(data []byte) [][]string {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nAtoms := 1 + int(next()%4)
	atoms := make([][]string, 0, nAtoms)
	for i := 0; i < nAtoms; i++ {
		arity := 1 + int(next()%3)
		vars := make([]string, 0, arity)
		for j := 0; j < arity; j++ {
			n := int(next() % 5)
			if n > len(data) {
				n = len(data)
			}
			vars = append(vars, string(data[:n]))
			data = data[n:]
		}
		atoms = append(atoms, vars)
	}
	return atoms
}

func FuzzQueryFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x01\x02\x01A\x01B\x01B\x01C"))         // 2-atom path
	f.Add([]byte("\x02\x02\x01A\x01B\x01B\x01A\x01\x00")) // shared pattern + empty name
	f.Add([]byte("\x03\x03ab,cd;e.f\x00\xff\xfe weird"))  // separators, non-UTF-8
	f.Fuzz(func(t *testing.T, data []byte) {
		atoms := fuzzQueryShape(data)

		build := func(prefix string, order []int) (*Query, string) {
			q := NewQuery()
			for i, ai := range order {
				q.Rel(prefix+string(rune('A'+i)), atoms[ai], nil, nil)
			}
			fp, err := q.Fingerprint()
			if err != nil {
				return q, ""
			}
			if len(fp) != 64 {
				t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
			}
			return q, fp
		}

		fwd := make([]int, len(atoms))
		rev := make([]int, len(atoms))
		for i := range atoms {
			fwd[i] = i
			rev[i] = len(atoms) - 1 - i
		}
		// Same shape declared forward vs reversed, under different
		// relation names: identical fingerprint or identical failure.
		_, fp1 := build("R", fwd)
		_, fp2 := build("S", rev)
		if fp1 != fp2 {
			t.Fatalf("fingerprint depends on declaration order or names:\n%q\nvs\n%q\natoms %q", fp1, fp2, atoms)
		}
	})
}
