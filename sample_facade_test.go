package repro

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// sampleEdges builds a duplicate-free edge list with one hub vertex, so
// triangle joins over it have a few hundred answers and a clear heavy
// hitter.
func sampleEdges(n int) ([]Tuple, []float64) {
	var tuples []Tuple
	var weights []float64
	add := func(a, b int64) {
		tuples = append(tuples, Tuple{a, b})
		weights = append(weights, float64(a)+float64(b)/1000)
	}
	for j := int64(1); j < int64(n); j++ {
		add(0, j)
		add(j, 0)
		add(j, j%int64(n-1)+1)
	}
	return tuples, weights
}

// answerKey renders a result tuple as a map key.
func answerKey(t Tuple) string {
	key := ""
	for _, v := range t {
		key += fmt.Sprintf("%d,", v)
	}
	return key
}

// assertSamplesInAnswers checks that every drawn sample is a real join
// answer with the answer's weight (1e-9: sampler and plan may combine
// weights in different orders).
func assertSamplesInAnswers(t *testing.T, samples, answers []Result) {
	t.Helper()
	want := map[string]float64{}
	for _, r := range answers {
		key := answerKey(r.Tuple)
		if _, dup := want[key]; dup {
			t.Fatalf("fixture produced duplicate answer %s; the check needs set semantics", key)
		}
		want[key] = r.Weight
	}
	for _, s := range samples {
		key := answerKey(s.Tuple)
		w, ok := want[key]
		if !ok {
			t.Fatalf("sampled tuple %v is not a join answer", s.Tuple)
		}
		if math.Abs(s.Weight-w) > 1e-9 {
			t.Fatalf("sampled tuple %v weight %v, enumeration says %v", s.Tuple, s.Weight, w)
		}
	}
}

func TestSampleTriangle(t *testing.T) {
	tuples, weights := sampleEdges(24)
	q := NewQuery().
		Rel("R", []string{"A", "B"}, tuples, weights).
		Rel("S", []string{"B", "C"}, tuples, weights).
		Rel("T", []string{"C", "A"}, tuples, weights)
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := p.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("fixture has no triangle answers")
	}
	samples, err := p.Sample(64, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 64 {
		t.Fatalf("drew %d samples, want 64", len(samples))
	}
	assertSamplesInAnswers(t, samples, answers)

	st := p.PlanStats()
	if st.AGMBound <= 0 {
		t.Fatalf("PlanStats.AGMBound = %v, want > 0", st.AGMBound)
	}
	if st.SampleTrials <= 0 || st.SampleAccepts < 64 {
		t.Fatalf("PlanStats counters trials=%d accepts=%d", st.SampleTrials, st.SampleAccepts)
	}
	// The estimate is unbiased with binomial noise; with ≥ 64 accepts it
	// lands within a small factor of the truth.
	truth := float64(len(answers))
	if st.EstCardinality < truth/3 || st.EstCardinality > truth*3 {
		t.Fatalf("EstCardinality = %v, enumeration found %v", st.EstCardinality, truth)
	}
}

func TestSampleAcyclic(t *testing.T) {
	tuples, weights := sampleEdges(16)
	q := NewQuery().
		Rel("R1", []string{"A", "B"}, tuples, weights).
		Rel("R2", []string{"B", "C"}, tuples, weights)
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := p.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := p.Sample(50, WithSeed(11), WithRanking(MaxCost))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 50 {
		t.Fatalf("drew %d samples, want 50", len(samples))
	}
	// Weights rank under MaxCost here, so only membership is compared.
	keys := map[string]bool{}
	for _, r := range answers {
		keys[answerKey(r.Tuple)] = true
	}
	for _, s := range samples {
		if !keys[answerKey(s.Tuple)] {
			t.Fatalf("sampled tuple %v is not a join answer", s.Tuple)
		}
	}
}

func TestSampleSeedDeterminism(t *testing.T) {
	tuples, weights := sampleEdges(20)
	q := NewQuery().
		Rel("R", []string{"A", "B"}, tuples, weights).
		Rel("S", []string{"B", "C"}, tuples, weights).
		Rel("T", []string{"C", "A"}, tuples, weights)
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Sample(32, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Sample(32, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d vs %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || answerKey(a[i].Tuple) != answerKey(b[i].Tuple) {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSampleDisjoint: a join with no answers exhausts the trial budget
// and says so, returning zero samples and a zero estimate.
func TestSampleDisjoint(t *testing.T) {
	left := []Tuple{{1, 2}, {3, 4}}
	right := []Tuple{{5, 6}, {7, 8}}
	w := []float64{1, 2}
	q := NewQuery().
		Rel("L", []string{"A", "B"}, left, w).
		Rel("R", []string{"B", "C"}, right, w)
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := p.Sample(5, WithSeed(1))
	if !errors.Is(err, ErrTrialBudget) {
		t.Fatalf("err = %v, want ErrTrialBudget", err)
	}
	if len(samples) != 0 {
		t.Fatalf("drew %d samples from an empty join", len(samples))
	}
	if st := p.PlanStats(); st.EstCardinality != 0 || st.SampleTrials == 0 {
		t.Fatalf("stats after empty join: %+v", st)
	}
}
