package repro

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// bowtieQuery builds the bowtie — two triangles sharing A — the
// canonical multi-bag GHD shape the parallel prepare path fans out on.
func bowtieQuery() *Query {
	g := workload.RandomGraph(10, 55, workload.UniformWeights(), 41)
	q := NewQuery()
	for i, vs := range [][]string{
		{"A", "B"}, {"B", "C"}, {"C", "A"}, {"A", "D"}, {"D", "E"}, {"E", "A"},
	} {
		q.Rel("E"+string(rune('1'+i)), vs, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// assertSameResults compares two full result sequences exactly — same
// tuples, same weights, same order.
func assertSameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Weight != want[i].Weight || !reflect.DeepEqual(got[i].Tuple, want[i].Tuple) {
			t.Fatalf("%s: rank %d = %v @ %v, want %v @ %v",
				label, i, got[i].Tuple, got[i].Weight, want[i].Tuple, want[i].Weight)
		}
	}
}

// TestWithParallelismBitIdentical checks the facade contract: a handle
// compiled with WithParallelism yields exactly the same ranked output
// as a sequential one, for every shape the planner routes — including
// acyclic queries, whose T-DP instantiation fans out level by level.
func TestWithParallelismBitIdentical(t *testing.T) {
	shapes := map[string]func() *Query{
		"bowtie": bowtieQuery,
	}
	for name, mk := range prepCases() {
		shapes[name] = mk
	}
	// (The wide acyclic star is covered separately in
	// TestAcyclicParallelPrepareBitIdentical — its full result set is
	// too large to drain here.)
	for name, mk := range shapes {
		seq, err := Compile(mk(), WithParallelism(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := Compile(mk(), WithParallelism(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := seq.TopK(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.TopK(0)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, name, got, want)
	}
}

// TestWithParallelismOnRun checks the per-run override: the option on
// Run drives the build that run triggers, with identical output.
func TestWithParallelismOnRun(t *testing.T) {
	seq, err := Compile(bowtieQuery())
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile(bowtieQuery())
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.TopK(0, WithParallelism(0)) // 0 = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "bowtie", got, want)
}

// TestConcurrentCancelDoesNotFailHealthyRun: a Run with a live context
// racing a Run whose context is canceled must never inherit the other
// run's cancellation — if it lands on the canceled build's cache entry
// it retries with its own context.
func TestConcurrentCancelDoesNotFailHealthyRun(t *testing.T) {
	for round := 0; round < 8; round++ {
		p, err := Compile(bowtieQuery(), WithParallelism(2))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := p.TopK(1, WithContext(ctx))
			done <- err
		}()
		cancel()
		if _, err := p.TopK(1); err != nil {
			t.Fatalf("round %d: healthy run failed: %v", round, err)
		}
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: canceled run: %v", round, err)
		}
	}
}

// TestCanceledPrepareNotCached: cancelling the Run that triggers bag
// materialisation must fail that Run with ctx.Err() — and must not
// poison the per-ranking cache, so a later Run succeeds.
func TestCanceledPrepareNotCached(t *testing.T) {
	p, err := Compile(bowtieQuery(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled first run: got %v, want context.Canceled", err)
	}
	res, err := p.TopK(5)
	if err != nil {
		t.Fatalf("run after canceled prepare: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("run after canceled prepare returned no results")
	}
}
