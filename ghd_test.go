package repro

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/ranking"
	"repro/internal/workload"
)

// atomSpec declares one relation of a brute-force reference query.
type atomSpec struct {
	name string
	vars []string
}

// graphQuery binds the workload graph's edge relation to each atom.
func graphQuery(g *workload.Graph, atoms []atomSpec) *Query {
	q := NewQuery()
	for _, a := range atoms {
		q.Rel(a.name, a.vars, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// bruteWeights computes the reference result weights of the join by
// backtracking over variable bindings, sorted into agg's ranking order.
func bruteWeights(g *workload.Graph, atoms []atomSpec, agg ranking.Aggregate) []float64 {
	binding := map[string]Value{}
	var weights []float64
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == len(atoms) {
			weights = append(weights, w)
			return
		}
		a := atoms[i]
	tuples:
		for ti, t := range g.Edges.Tuples {
			var bound []string
			for c, v := range a.vars {
				if bv, ok := binding[v]; ok {
					if bv != t[c] {
						for _, b := range bound {
							delete(binding, b)
						}
						continue tuples
					}
				} else {
					binding[v] = t[c]
					bound = append(bound, v)
				}
			}
			rec(i+1, agg.Combine(w, g.Edges.Weights[ti]))
			for _, b := range bound {
				delete(binding, b)
			}
		}
	}
	rec(0, agg.Identity())
	sort.Slice(weights, func(i, j int) bool { return agg.Less(weights[i], weights[j]) })
	return weights
}

var ghdFacadeShapes = map[string][]atomSpec{
	"K4": {
		{"R1", []string{"A", "B"}}, {"R2", []string{"A", "C"}}, {"R3", []string{"A", "D"}},
		{"R4", []string{"B", "C"}}, {"R5", []string{"B", "D"}}, {"R6", []string{"C", "D"}},
	},
	"bowtie": {
		{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"C", "A"}},
		{"R4", []string{"A", "D"}}, {"R5", []string{"D", "E"}}, {"R6", []string{"E", "A"}},
	},
	"fused-triangles": {
		{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"C", "A"}},
		{"R4", []string{"B", "D"}}, {"R5", []string{"D", "C"}},
	},
	"star-with-chord": {
		{"R1", []string{"A", "B"}}, {"R2", []string{"A", "C"}}, {"R3", []string{"A", "D"}},
		{"R4", []string{"B", "C"}},
	},
	"flipped-triangle": { // genuine cycle with one edge orientation flipped
		{"R1", []string{"A", "B"}}, {"R2", []string{"C", "B"}}, {"R3", []string{"C", "A"}},
	},
	"5-clique": {
		{"R1", []string{"A", "B"}}, {"R2", []string{"A", "C"}}, {"R3", []string{"A", "D"}},
		{"R4", []string{"A", "E"}}, {"R5", []string{"B", "C"}}, {"R6", []string{"B", "D"}},
		{"R7", []string{"B", "E"}}, {"R8", []string{"C", "D"}}, {"R9", []string{"C", "E"}},
		{"R10", []string{"D", "E"}},
	},
}

// TestGHDFacadeParity is the acceptance test of the generic planner:
// every previously-rejected cyclic shape compiles, enumerates in
// ranking order, and matches a brute-force join baseline under all five
// ranking aggregates.
func TestGHDFacadeParity(t *testing.T) {
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 7)
	aggs := []ranking.Aggregate{SumCost, SumBenefit, MaxCost, MinBenefit, ProductCost}
	for name, atoms := range ghdFacadeShapes {
		p, err := Compile(graphQuery(g, atoms))
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, agg := range aggs {
			want := bruteWeights(g, atoms, agg)
			got, err := p.TopK(0, WithRanking(agg))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, agg.Name(), err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d results, brute force has %d", name, agg.Name(), len(got), len(want))
			}
			for i, r := range got {
				if i > 0 && agg.Less(r.Weight, got[i-1].Weight) {
					t.Fatalf("%s/%s: rank %d out of order", name, agg.Name(), i)
				}
				if math.Abs(r.Weight-want[i]) > 1e-9 {
					t.Fatalf("%s/%s: weight[%d] = %g, brute force %g", name, agg.Name(), i, r.Weight, want[i])
				}
			}
		}
	}
}

// TestMatchCycleFlippedOrientation is the regression test for the
// orientation-sensitive cycle matcher: cycles declared with flipped
// edges must still hit the canonical cycle fast paths, with the flipped
// relations re-oriented rather than rejected or misranked.
func TestMatchCycleFlippedOrientation(t *testing.T) {
	cases := map[string]struct {
		atoms []atomSpec
		kind  queryKind
	}{
		"triangle-one-flip": {
			atoms: []atomSpec{
				{"R1", []string{"A", "B"}}, {"R2", []string{"C", "B"}}, {"R3", []string{"C", "A"}},
			},
			kind: kindTriangle,
		},
		"triangle-all-flipped": {
			atoms: []atomSpec{
				{"R1", []string{"B", "A"}}, {"R2", []string{"C", "B"}}, {"R3", []string{"A", "C"}},
			},
			kind: kindTriangle,
		},
		"four-cycle-flip": {
			atoms: []atomSpec{
				{"R1", []string{"A", "B"}}, {"R2", []string{"C", "B"}},
				{"R3", []string{"C", "D"}}, {"R4", []string{"D", "A"}},
			},
			kind: kindFourCycle,
		},
		"five-cycle-flip": {
			atoms: []atomSpec{
				{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"D", "C"}},
				{"R4", []string{"D", "E"}}, {"R5", []string{"E", "A"}},
			},
			kind: kindLongCycle,
		},
	}
	g := workload.RandomGraph(10, 50, workload.UniformWeights(), 5)
	for name, tc := range cases {
		p, err := Compile(graphQuery(g, tc.atoms))
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if p.kind != tc.kind {
			t.Errorf("%s: compiled to kind %d, want %d (cycle fast path)", name, p.kind, tc.kind)
		}
		want := bruteWeights(g, tc.atoms, SumCost)
		got, err := p.TopK(0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, brute force has %d", name, len(got), len(want))
		}
		for i, r := range got {
			if math.Abs(r.Weight-want[i]) > 1e-9 {
				t.Fatalf("%s: weight[%d] = %g, brute force %g", name, i, r.Weight, want[i])
			}
		}
	}
}

// TestMatchCycleRejectsBowtie guards the occurrence check: the bowtie
// admits a closed walk through all six edges but is NOT a simple cycle,
// so it must take the GHD path, not the cycle fast path.
func TestMatchCycleRejectsBowtie(t *testing.T) {
	g := workload.RandomGraph(6, 20, workload.UniformWeights(), 2)
	p, err := Compile(graphQuery(g, ghdFacadeShapes["bowtie"]))
	if err != nil {
		t.Fatal(err)
	}
	if p.kind != kindGeneric {
		t.Fatalf("bowtie compiled to kind %d, want kindGeneric", p.kind)
	}
}

// ghdLifecycleQuery returns a compiled GHD-path query with enough
// results to interrupt mid-stream.
func ghdLifecycleQuery(t *testing.T) *Prepared {
	t.Helper()
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 7)
	p, err := Compile(graphQuery(g, ghdFacadeShapes["fused-triangles"]))
	if err != nil {
		t.Fatal(err)
	}
	if p.kind != kindGeneric {
		t.Fatal("expected the GHD path")
	}
	return p
}

// fourCycleLifecycleQuery returns a compiled multi-tree (submodular
// 4-cycle) query, whose iterators run under core.Merge.
func fourCycleLifecycleQuery(t *testing.T) *Prepared {
	t.Helper()
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 7)
	p, err := Compile(graphQuery(g, []atomSpec{
		{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}},
		{"R3", []string{"C", "D"}}, {"R4", []string{"D", "A"}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if p.kind != kindFourCycle {
		t.Fatal("expected the 4-cycle path")
	}
	return p
}

func TestGHDIteratorLifecycle(t *testing.T) {
	for name, prep := range map[string]func(*testing.T) *Prepared{
		"ghd":        ghdLifecycleQuery,
		"merge-tree": fourCycleLifecycleQuery,
	} {
		t.Run(name, func(t *testing.T) {
			p := prep(t)

			// Close mid-stream: Next stops, Err reports ErrClosed.
			it, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := it.Next(); !ok {
				t.Skip("instance has no results")
			}
			if err := it.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, ok := it.Next(); ok {
				t.Error("Next should report false after Close")
			}
			if it.Err() != ErrClosed {
				t.Errorf("Err after Close = %v, want ErrClosed", it.Err())
			}
			if err := it.Close(); err != nil {
				t.Errorf("Close must be idempotent, got %v", err)
			}

			// Context cancellation: Err reports the context error.
			ctx, cancel := context.WithCancel(context.Background())
			it, err = p.Run(WithContext(ctx))
			if err != nil {
				t.Fatal(err)
			}
			it.Next()
			cancel()
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			if it.Err() != context.Canceled {
				t.Errorf("Err after cancel = %v, want context.Canceled", it.Err())
			}
			it.Close()

			// Clean drain: Err stays nil, Close after drain stays nil.
			it, err = p.Run()
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				n++
			}
			if it.Err() != nil {
				t.Errorf("Err after clean drain = %v, want nil", it.Err())
			}
			if err := it.Close(); err != nil {
				t.Errorf("Close after drain = %v, want nil", err)
			}
			if n == 0 {
				t.Error("drain produced no results but Next succeeded earlier")
			}
		})
	}
}

// TestGHDPreparedReuse exercises the prepare-once/execute-many contract
// on the GHD path: one Compile, many Runs across aggregates and k.
func TestGHDPreparedReuse(t *testing.T) {
	p := ghdLifecycleQuery(t)
	full, err := p.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Skip("instance has no results")
	}
	top3, err := p.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != min(3, len(full)) {
		t.Fatalf("TopK(3) returned %d results", len(top3))
	}
	for i := range top3 {
		if math.Abs(top3[i].Weight-full[i].Weight) > 1e-9 {
			t.Fatalf("TopK(3)[%d] = %g, full[%d] = %g", i, top3[i].Weight, i, full[i].Weight)
		}
	}
	n, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(full) {
		t.Fatalf("Count = %d, want %d", n, len(full))
	}
	empty, err := p.IsEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Error("IsEmpty = true with results present")
	}
}
